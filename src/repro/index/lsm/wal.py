"""Write-ahead log for the live index.

Every accepted append batch is written here *before* it is
acknowledged, so a crash between the ack and the next memtable seal
loses nothing: reopening the live index replays the log and rebuilds
the memtable exactly.  The format is deliberately dumb — a magic
header, then length-prefixed CRC-checked records:

======  =====================================================
bytes   field
======  =====================================================
8       file magic ``b"RPWAL001"``
------  per record ----------------------------------------------
4       payload length (``uint32`` little-endian)
4       ``zlib.crc32`` of the payload (``uint32`` little-endian)
n       payload
======  =====================================================

The payload of one record (one acknowledged append batch):

======  =====================================================
8       ``first_text_id`` (``uint64``) of the batch
4       text count ``n`` (``uint32``)
4*n     per-text token counts (``uint32``)
4*sum   all token ids, concatenated (``uint32``)
======  =====================================================

Recovery scans records sequentially and stops at the first torn or
corrupt one (short header, short payload, CRC mismatch); everything
before that point is replayed and the file is truncated to it, so a
crash mid-write can only ever lose the *unacknowledged* tail record.

Durability of the ack is governed by ``ack_policy``:

``always``
    ``fsync`` before every ack — an acknowledged append survives power
    loss (the default, and what the crash-recovery smoke test proves);
``batch``
    flush to the OS on every append, ``fsync`` every
    ``fsync_batch`` appends (and on seal/close) — an OS crash may lose
    the last few acks, a process crash loses nothing;
``none``
    flush to the OS only — cheapest, same process-crash guarantee.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path

import numpy as np

from repro.exceptions import IndexFormatError, InvalidParameterError

WAL_MAGIC = b"RPWAL001"

#: Supported ack durability policies (see the module docs).
ACK_POLICIES = ("always", "batch", "none")

_HEADER_BYTES = 8  # per-record: uint32 length + uint32 crc
#: Sanity cap on one record's payload; a "length" beyond this is
#: treated as tail corruption rather than honoured.
_MAX_RECORD_BYTES = 1 << 30


def encode_record(first_text_id: int, texts: list[np.ndarray]) -> bytes:
    """Serialize one append batch into a WAL record payload."""
    lengths = np.asarray([text.size for text in texts], dtype=np.uint32)
    parts = [
        np.asarray([first_text_id], dtype="<u8").tobytes(),
        np.asarray([len(texts)], dtype="<u4").tobytes(),
        lengths.astype("<u4").tobytes(),
    ]
    if texts:
        tokens = np.concatenate(
            [np.asarray(text, dtype=np.uint32) for text in texts]
        )
        parts.append(tokens.astype("<u4").tobytes())
    return b"".join(parts)


def decode_record(payload: bytes) -> tuple[int, list[np.ndarray]]:
    """Inverse of :func:`encode_record`."""
    if len(payload) < 12:
        raise IndexFormatError("WAL record payload shorter than its header")
    first_text_id = int(np.frombuffer(payload[:8], dtype="<u8")[0])
    count = int(np.frombuffer(payload[8:12], dtype="<u4")[0])
    lengths_end = 12 + 4 * count
    if lengths_end > len(payload):
        raise IndexFormatError("WAL record payload truncated in lengths")
    lengths = np.frombuffer(payload[12:lengths_end], dtype="<u4").astype(np.int64)
    total = int(lengths.sum())
    if lengths_end + 4 * total != len(payload):
        raise IndexFormatError("WAL record payload size does not match lengths")
    tokens = np.frombuffer(payload[lengths_end:], dtype="<u4").astype(np.uint32)
    texts = []
    cursor = 0
    for length in lengths.tolist():
        texts.append(tokens[cursor : cursor + length])
        cursor += length
    return first_text_id, texts


def scan_wal(path: str | Path) -> tuple[list[tuple[int, list[np.ndarray]]], int, str | None]:
    """Read every valid record of a WAL file (read-only).

    Returns ``(records, valid_end, tail_error)``: the decoded records,
    the byte offset where the valid prefix ends, and a description of
    the torn/corrupt tail (``None`` when the file ends cleanly).  A
    missing or bad magic raises :class:`IndexFormatError` — that is a
    wrong *file*, not a torn tail.
    """
    path = Path(path)
    data = path.read_bytes()
    if len(data) < len(WAL_MAGIC) or data[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise IndexFormatError(f"{path} is not a WAL file (bad magic)")
    records: list[tuple[int, list[np.ndarray]]] = []
    offset = len(WAL_MAGIC)
    tail_error: str | None = None
    while offset < len(data):
        if offset + _HEADER_BYTES > len(data):
            tail_error = "torn record header"
            break
        length, crc = np.frombuffer(
            data[offset : offset + _HEADER_BYTES], dtype="<u4"
        ).tolist()
        length, crc = int(length), int(crc)
        if length > _MAX_RECORD_BYTES:
            tail_error = f"implausible record length {length}"
            break
        payload = data[offset + _HEADER_BYTES : offset + _HEADER_BYTES + length]
        if len(payload) < length:
            tail_error = "torn record payload"
            break
        if zlib.crc32(payload) != crc:
            tail_error = "record checksum mismatch"
            break
        try:
            records.append(decode_record(payload))
        except IndexFormatError as exc:
            tail_error = str(exc)
            break
        offset += _HEADER_BYTES + length
    return records, offset, tail_error


class WriteAheadLog:
    """One open WAL segment: recover-on-open, then append-only.

    Opening an existing file replays its valid prefix into
    ``self.recovered`` and truncates any torn tail; opening a missing
    file creates it with the magic header.  Appends are acknowledged
    according to ``ack_policy`` (see the module docs).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        ack_policy: str = "always",
        fsync_batch: int = 32,
    ) -> None:
        if ack_policy not in ACK_POLICIES:
            raise InvalidParameterError(
                f"ack_policy must be one of {ACK_POLICIES}, got {ack_policy!r}"
            )
        if fsync_batch < 1:
            raise InvalidParameterError("fsync_batch must be >= 1")
        self.path = Path(path)
        self.ack_policy = ack_policy
        self.fsync_batch = int(fsync_batch)
        self.recovered: list[tuple[int, list[np.ndarray]]] = []
        self.truncated_bytes = 0
        self.records_written = 0
        self.bytes_written = 0
        self.syncs = 0
        self._unsynced = 0
        if self.path.exists():
            records, valid_end, tail_error = scan_wal(self.path)
            self.recovered = records
            size = self.path.stat().st_size
            if tail_error is not None and valid_end < size:
                self.truncated_bytes = size - valid_end
                with open(self.path, "r+b") as handle:
                    handle.truncate(valid_end)
            self._file = open(self.path, "ab")
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "wb")
            self._file.write(WAL_MAGIC)
            self._file.flush()
            os.fsync(self._file.fileno())

    # -- appending ------------------------------------------------------
    def append(self, first_text_id: int, texts: list[np.ndarray]) -> None:
        """Log one append batch; returns once the batch is *acknowledgeable*
        under the configured policy."""
        payload = encode_record(first_text_id, texts)
        header = np.asarray(
            [len(payload), zlib.crc32(payload)], dtype="<u4"
        ).tobytes()
        self._file.write(header + payload)
        self._file.flush()
        self.records_written += 1
        self.bytes_written += len(header) + len(payload)
        if self.ack_policy == "always":
            os.fsync(self._file.fileno())
            self.syncs += 1
        elif self.ack_policy == "batch":
            self._unsynced += 1
            if self._unsynced >= self.fsync_batch:
                self.sync()

    def sync(self) -> None:
        """Flush and ``fsync`` the log (a durability barrier)."""
        self._file.flush()
        os.fsync(self._file.fileno())
        self.syncs += 1
        self._unsynced = 0

    def close(self, *, sync: bool = True) -> None:
        if self._file.closed:
            return
        if sync:
            self._file.flush()
            os.fsync(self._file.fileno())
        self._file.close()

    # -- introspection --------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Current on-disk size of the segment."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog({str(self.path)!r}, ack_policy={self.ack_policy!r}, "
            f"records={self.records_written})"
        )
