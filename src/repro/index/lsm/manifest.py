"""Atomically-committed manifest of a live-index root.

The manifest is the single commit point of every structural transition
(seal, compaction): readers and recovery trust *only* what it lists.
It is a small JSON file written to a temp path, fsynced, and renamed
into place with ``os.replace`` — the same protocol as the index meta
file of :mod:`repro.index.storage` — so at every instant the root
holds exactly one complete manifest.

Schema (``MANIFEST.json``)::

    {
      "format_version": 1,
      "generation":   <int, bumped on every committed transition>,
      "family":       <HashFamily.to_dict()>,
      "t":            <int>,
      "vocab_size":   <int>,
      "codec":        "raw" | "packed",   # codec of sealed runs
      "runs":         ["run-000001", ...],  # ascending text-id order
      "next_text_id": <int, first id not yet covered by a sealed run>,
      "total_tokens": <int, tokens across all sealed texts>,
      "wal_seq":      <int, sequence number of the active WAL segment>,
      "run_seq":      <int, next run directory sequence number>
    }

``next_text_id`` doubles as the replay fence: WAL records whose ids
fall below it were already sealed into a run and are skipped on
recovery (they can only exist in the crash window between a manifest
commit and the old segment's deletion).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.hashing import HashFamily
from repro.exceptions import IndexFormatError

MANIFEST_FILE = "MANIFEST.json"
MANIFEST_FORMAT_VERSION = 1


@dataclass
class Manifest:
    """In-memory image of one committed manifest generation."""

    family: HashFamily
    t: int
    vocab_size: int
    codec: str = "packed"
    generation: int = 0
    runs: list[str] = field(default_factory=list)
    next_text_id: int = 0
    total_tokens: int = 0
    wal_seq: int = 0
    run_seq: int = 0

    @classmethod
    def load(cls, root: str | Path) -> "Manifest":
        path = Path(root) / MANIFEST_FILE
        try:
            raw = json.loads(path.read_text())
        except FileNotFoundError:
            raise IndexFormatError(f"missing {MANIFEST_FILE} in {root}")
        except ValueError as exc:
            raise IndexFormatError(f"{path} is not valid JSON: {exc}")
        version = raw.get("format_version")
        if version != MANIFEST_FORMAT_VERSION:
            raise IndexFormatError(
                f"unsupported manifest format version {version!r}"
            )
        try:
            return cls(
                family=HashFamily.from_dict(raw["family"]),
                t=int(raw["t"]),
                vocab_size=int(raw["vocab_size"]),
                codec=str(raw["codec"]),
                generation=int(raw["generation"]),
                runs=[str(name) for name in raw["runs"]],
                next_text_id=int(raw["next_text_id"]),
                total_tokens=int(raw.get("total_tokens", 0)),
                wal_seq=int(raw["wal_seq"]),
                run_seq=int(raw["run_seq"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexFormatError(f"{path} is missing or mistypes a field: {exc}")

    def commit(self, root: str | Path) -> None:
        """Atomically publish this image as the root's manifest.

        Bumps ``generation`` first, so every committed manifest carries
        a strictly increasing generation number.
        """
        root = Path(root)
        self.generation += 1
        payload = json.dumps(
            {
                "format_version": MANIFEST_FORMAT_VERSION,
                "generation": self.generation,
                "family": self.family.to_dict(),
                "t": self.t,
                "vocab_size": self.vocab_size,
                "codec": self.codec,
                "runs": list(self.runs),
                "next_text_id": self.next_text_id,
                "total_tokens": self.total_tokens,
                "wal_seq": self.wal_seq,
                "run_seq": self.run_seq,
            }
        )
        temp_path = root / (MANIFEST_FILE + ".tmp")
        with open(temp_path, "w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, root / MANIFEST_FILE)
        _fsync_directory(root)


def manifest_exists(root: str | Path) -> bool:
    """Whether ``root`` holds a committed live-index manifest."""
    return (Path(root) / MANIFEST_FILE).exists()


def _fsync_directory(root: Path) -> None:
    """Best-effort fsync of the directory entry after ``os.replace``."""
    try:
        fd = os.open(root, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)
