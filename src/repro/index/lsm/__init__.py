"""LSM live index: WAL-backed streaming ingest over sealed v2 runs.

Public surface:

* :class:`LiveIndex` / :class:`LiveIndexConfig` — the streaming,
  crash-safe, snapshot-isolated index (``repro-cli live-ingest``).
* :class:`LiveSearcher` — per-query snapshot pinning over a live index.
* :class:`UnionIndexReader` — immutable union over text-disjoint readers.
* :class:`Memtable` — the in-memory write buffer (shared with
  :class:`~repro.index.incremental.IncrementalIndex`).
* :class:`WriteAheadLog` / :class:`Manifest` — durability primitives.
* :class:`BloomPrefilter` — optional exact-duplicate ingest gate.
"""

from repro.index.lsm.live import (
    LiveIndex,
    LiveIndexConfig,
    LiveIndexStats,
    LiveSearcher,
    pick_compaction,
    run_name,
    wal_name,
)
from repro.index.lsm.manifest import (
    MANIFEST_FILE,
    MANIFEST_FORMAT_VERSION,
    Manifest,
    manifest_exists,
)
from repro.index.lsm.memtable import Memtable
from repro.index.lsm.prefilter import BloomPrefilter, optimal_bits, optimal_hashes
from repro.index.lsm.union import UnionIndexReader
from repro.index.lsm.wal import (
    ACK_POLICIES,
    WAL_MAGIC,
    WriteAheadLog,
    decode_record,
    encode_record,
    scan_wal,
)

__all__ = [
    "ACK_POLICIES",
    "BloomPrefilter",
    "LiveIndex",
    "LiveIndexConfig",
    "LiveIndexStats",
    "LiveSearcher",
    "MANIFEST_FILE",
    "MANIFEST_FORMAT_VERSION",
    "Manifest",
    "Memtable",
    "UnionIndexReader",
    "WAL_MAGIC",
    "WriteAheadLog",
    "decode_record",
    "encode_record",
    "manifest_exists",
    "optimal_bits",
    "optimal_hashes",
    "pick_compaction",
    "run_name",
    "scan_wal",
    "wal_name",
]
