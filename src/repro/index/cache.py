"""Policy-switchable caching of inverted lists across queries.

The paper's evaluation measures cold-cache query latency, but a
deployed memorization evaluation (Section 5) issues *many* queries
against the same index — and Zipf skew means the same long lists are
touched over and over.  This wrapper adds a bounded list cache in front
of any :class:`~repro.index.inverted.InvertedIndexReader`, eliminating
repeat I/O for the hot lists while preserving the reader interface
(including I/O accounting: cache hits cost zero bytes).

Two residency policies (see :mod:`repro.index.cachepolicy`):

* ``policy="lru"`` — the classic bounded LRU;
* ``policy="tinylfu"`` — W-TinyLFU admission: a 4-bit count-min
  frequency sketch gates graduation from a small LRU window into a
  segmented-LRU main region, so one-shot giant lists from long-tail
  queries cannot flush the Zipf-head working set.

Cold misses are **single-flight**: the lock is *not* held across the
inner read, and concurrent misses for the same key coalesce onto one
loader through a per-key in-flight future — N threads asking for the
same cold list cost one inner read, and misses for *different* keys
overlap their I/O instead of serializing behind one lock.

Batch executors (:mod:`repro.query`) additionally *pin* the lists a
whole query batch is known to touch: a pinned list is loaded once and
exempt from eviction until :meth:`CachedIndexReader.unpin_all`, so a
list loaded for the batch's third query is guaranteed still warm for
its eighty-seventh.  Pins bypass the TinyLFU frequency gate — pinning
is a planner contract, not a popularity bet.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.index.cachepolicy import make_policy
from repro.index.inverted import IOStats, POSTING_BYTES, POSTING_DTYPE, extract_texts


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of one cache's counters (feeds ``BatchStats``)."""

    hits: int
    misses: int
    evictions: int
    cached_bytes: int
    capacity_bytes: int
    pinned_bytes: int
    cached_lists: int = 0
    pinned_lists: int = 0
    admission_rejections: int = 0
    singleflight_waits: int = 0
    policy: str = "lru"

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-ready form (the service's ``/stats`` cache block)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "cached_bytes": self.cached_bytes,
            "capacity_bytes": self.capacity_bytes,
            "pinned_bytes": self.pinned_bytes,
            "cached_lists": self.cached_lists,
            "pinned_lists": self.pinned_lists,
            "admission_rejections": self.admission_rejections,
            "singleflight_waits": self.singleflight_waits,
            "policy": self.policy,
        }


class _Flight:
    """One in-flight cold load; waiters block on the event."""

    __slots__ = ("event", "postings", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.postings: np.ndarray | None = None
        self.error: BaseException | None = None


class CachedIndexReader:
    """Policy-switchable list cache over an inverted-index reader.

    Parameters
    ----------
    inner:
        The wrapped reader (memory or disk).
    capacity_bytes:
        Cache budget.  A cached list is charged 16 bytes per posting;
        single lists larger than the whole budget bypass the cache.
    policy:
        ``"lru"`` (default) or ``"tinylfu"`` (frequency-gated
        admission; see :mod:`repro.index.cachepolicy`).

    Only full-list reads are cached here; zone-map point reads
    (:meth:`load_text_windows`) are served from a cached full list when
    one is resident and otherwise fall through to the inner reader —
    the decoded-block tier (:mod:`repro.index.blockcache`), attached to
    the inner :class:`~repro.index.storage.DiskInvertedIndex`, is what
    makes the *fallthrough* cheap for the packed codec.

    The reader is thread-safe: one instance may be shared by the batch
    executor's thread mode and the online service's worker pool.  A
    single lock guards the residency metadata; cache hits only pay a
    dict lookup under the lock, and cold misses release it around the
    inner read (single-flight per key, parallel across keys).
    """

    def __init__(
        self,
        inner,
        capacity_bytes: int = 32 * 1024 * 1024,
        *,
        policy: str = "lru",
    ) -> None:
        if capacity_bytes <= 0:
            raise InvalidParameterError("capacity_bytes must be positive")
        self.inner = inner
        self.family = inner.family
        self.t = inner.t
        self.io_stats: IOStats = inner.io_stats
        self._capacity = int(capacity_bytes)
        self._lists: dict[tuple[int, int], np.ndarray] = {}
        self._pinned: set[tuple[int, int]] = set()
        self._policy = make_policy(
            policy, self._capacity, lambda key: key in self._pinned
        )
        self._inflight: dict[tuple[int, int], _Flight] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.singleflight_waits = 0

    @property
    def policy(self) -> str:
        """Residency policy name (``lru`` or ``tinylfu``)."""
        return self._policy.name

    # -- reader protocol ------------------------------------------------
    def list_length(self, func: int, minhash: int) -> int:
        with self._lock:
            cached = self._lists.get((func, minhash))
            if cached is not None:
                return int(cached.size)
        return self.inner.list_length(func, minhash)

    def load_list(self, func: int, minhash: int) -> np.ndarray:
        key = (func, minhash)
        while True:
            with self._lock:
                cached = self._lists.get(key)
                if cached is not None:
                    self._policy.on_hit(key)
                    self.hits += 1
                    return cached
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _Flight()
                    self._inflight[key] = flight
                    self.misses += 1
                    break
            # Another thread is loading this key: wait on its flight
            # instead of issuing a duplicate inner read.
            flight.event.wait()
            if flight.error is None and flight.postings is not None:
                with self._lock:
                    self.singleflight_waits += 1
                    self.hits += 1
                return flight.postings
            # The loader failed; loop and become the loader ourselves.
        return self._load_inner(key, flight, pin=False)

    def _load_inner(
        self, key: tuple[int, int], flight: _Flight, *, pin: bool
    ) -> np.ndarray:
        """Loader half of single-flight: inner read *outside* the lock."""
        try:
            postings = self.inner.load_list(key[0], key[1])
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._inflight.pop(key, None)
            flight.event.set()
            raise
        flight.postings = postings
        with self._lock:
            self._admit(key, postings, force=pin)
            if pin and key in self._lists:
                self._pinned.add(key)
            self._inflight.pop(key, None)
        flight.event.set()
        return postings

    def load_text_windows(self, func: int, minhash: int, text_id: int) -> np.ndarray:
        key = (func, minhash)
        with self._lock:
            cached = self._lists.get(key)
            if cached is not None:
                # Serve the point read from the cached full list.
                self._policy.on_hit(key)
                self.hits += 1
                lo = int(np.searchsorted(cached["text"], text_id, side="left"))
                hi = int(np.searchsorted(cached["text"], text_id, side="right"))
                return cached[lo:hi]
            self.misses += 1
        return self.inner.load_text_windows(func, minhash, text_id)

    def sketch_list_lengths(self, sketch: np.ndarray) -> np.ndarray:
        """Batched list lengths for one sketch, cached lists first.

        Resident lists answer from their in-memory size; only the
        missing functions consult the inner reader — in one batched
        call when it has :meth:`sketch_list_lengths`, else through a
        vectorized ``searchsorted`` over its directory arrays, with the
        per-function ``list_length`` loop as the last resort.
        """
        sketch = np.asarray(sketch)
        k = self.family.k
        lengths = np.full(k, -1, dtype=np.int64)
        with self._lock:
            for func in range(k):
                cached = self._lists.get((func, int(sketch[func])))
                if cached is not None:
                    lengths[func] = int(cached.size)
        missing = np.flatnonzero(lengths < 0)
        if missing.size == 0:
            return lengths
        inner = getattr(self.inner, "sketch_list_lengths", None)
        if inner is not None:
            inner_lengths = np.asarray(inner(sketch), dtype=np.int64)
            lengths[missing] = inner_lengths[missing]
            return lengths
        keys_of = getattr(self.inner, "list_keys", None)
        lengths_of = getattr(self.inner, "list_lengths", None)
        if keys_of is not None and lengths_of is not None:
            for func in missing.tolist():
                keys = np.asarray(keys_of(func))
                minhash = int(sketch[func])
                pos = int(np.searchsorted(keys, minhash))
                if pos < keys.size and int(keys[pos]) == minhash:
                    lengths[func] = int(np.asarray(lengths_of(func))[pos])
                else:
                    lengths[func] = 0
            return lengths
        for func in missing.tolist():
            lengths[func] = int(self.inner.list_length(func, int(sketch[func])))
        return lengths

    def load_texts_windows(
        self, func: int, minhash: int, text_ids: np.ndarray
    ) -> np.ndarray:
        """Batched point read, served from a cached full list when hot."""
        key = (func, minhash)
        with self._lock:
            cached = self._lists.get(key)
            if cached is not None:
                self._policy.on_hit(key)
                self.hits += 1
                return extract_texts(cached, np.unique(np.asarray(text_ids)))
            self.misses += 1
        inner = getattr(self.inner, "load_texts_windows", None)
        if inner is not None:
            return inner(func, minhash, text_ids)
        parts = [
            self.inner.load_text_windows(func, minhash, int(text_id))
            for text_id in np.unique(np.asarray(text_ids))
        ]
        parts = [part for part in parts if part.size]
        if not parts:
            return np.empty(0, dtype=POSTING_DTYPE)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    # -- batch pinning ------------------------------------------------
    def pin(self, func: int, minhash: int) -> bool:
        """Load a list (if needed) and exempt it from eviction.

        Returns ``True`` iff the list now resides pinned in the cache;
        a list that would not fit in the budget is left unpinned (the
        query path still works, it just pays the re-read).  Pinning
        bypasses the TinyLFU admission gate.
        """
        key = (func, minhash)
        while True:
            with self._lock:
                if key in self._pinned:
                    return True
                cached = self._lists.get(key)
                if cached is not None:
                    self._policy.on_hit(key)
                    self._pinned.add(key)
                    return True
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _Flight()
                    self._inflight[key] = flight
                    self.misses += 1
                    break
            flight.event.wait()
            if flight.error is None and flight.postings is not None:
                with self._lock:
                    self.singleflight_waits += 1
                    self.hits += 1
                    if key not in self._lists:
                        # The loader's policy admission rejected it;
                        # pins override the gate.
                        self._admit(key, flight.postings, force=True)
                    if key in self._lists:
                        self._pinned.add(key)
                        return True
                    return False
            # The loader failed; loop and become the loader ourselves.
        self._load_inner(key, flight, pin=True)
        with self._lock:
            return key in self._pinned

    def unpin_all(self) -> None:
        """Release every pin; pinned entries become ordinary entries."""
        with self._lock:
            self._pinned.clear()

    @property
    def pinned_bytes(self) -> int:
        with self._lock:
            return sum(
                int(self._lists[key].size) * POSTING_BYTES
                for key in self._pinned
                if key in self._lists
            )

    # -- cache management ------------------------------------------------
    def _admit(
        self, key: tuple[int, int], postings: np.ndarray, *, force: bool = False
    ) -> None:
        # Callers hold self._lock.
        nbytes = int(postings.size) * POSTING_BYTES
        admitted, evicted = (
            self._policy.force(key, nbytes)
            if force
            else self._policy.admit(key, nbytes)
        )
        for victim in evicted:
            self._lists.pop(victim, None)
            self.evictions += 1
        if admitted:
            self._lists[key] = postings

    @property
    def cached_bytes(self) -> int:
        return self._policy.used_bytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> CacheStats:
        """Current counters as an immutable snapshot."""
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                cached_bytes=self._policy.used_bytes,
                capacity_bytes=self._capacity,
                pinned_bytes=self.pinned_bytes,
                cached_lists=len(self._lists),
                pinned_lists=len(self._pinned),
                admission_rejections=self._policy.admission_rejections,
                singleflight_waits=self.singleflight_waits,
                policy=self._policy.name,
            )

    def clear(self) -> None:
        """Drop every cached list (pins included)."""
        with self._lock:
            self._lists.clear()
            self._pinned.clear()
            self._policy.clear()

    # -- passthrough introspection ----------------------------------------
    @property
    def num_postings(self) -> int:
        return self.inner.num_postings

    @property
    def nbytes(self) -> int:
        return self.inner.nbytes

    def list_lengths(self, func: int) -> np.ndarray:
        return self.inner.list_lengths(func)

    def list_keys(self, func: int) -> np.ndarray:
        return self.inner.list_keys(func)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CachedIndexReader({self.inner!r}, policy={self._policy.name}, "
            f"used={self.cached_bytes}, hit_rate={self.hit_rate:.2f})"
        )
