"""LRU caching of inverted lists across queries.

The paper's evaluation measures cold-cache query latency, but a
deployed memorization evaluation (Section 5) issues *many* queries
against the same index — and Zipf skew means the same long lists are
touched over and over.  This wrapper adds a bounded LRU cache in front
of any :class:`~repro.index.inverted.InvertedIndexReader`, eliminating
repeat I/O for the hot lists while preserving the reader interface
(including I/O accounting: cache hits cost zero bytes).

Batch executors (:mod:`repro.query`) additionally *pin* the lists a
whole query batch is known to touch: a pinned list is loaded once and
exempt from LRU eviction until :meth:`CachedIndexReader.unpin_all`, so
a list loaded for the batch's third query is guaranteed still warm for
its eighty-seventh.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.index.inverted import IOStats, POSTING_BYTES, POSTING_DTYPE, extract_texts


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of one cache's counters (feeds ``BatchStats``)."""

    hits: int
    misses: int
    evictions: int
    cached_bytes: int
    capacity_bytes: int
    pinned_bytes: int
    cached_lists: int = 0
    pinned_lists: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-ready form (the service's ``/stats`` cache block)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "cached_bytes": self.cached_bytes,
            "capacity_bytes": self.capacity_bytes,
            "pinned_bytes": self.pinned_bytes,
            "cached_lists": self.cached_lists,
            "pinned_lists": self.pinned_lists,
        }


class CachedIndexReader:
    """LRU list cache over an inverted-index reader.

    Parameters
    ----------
    inner:
        The wrapped reader (memory or disk).
    capacity_bytes:
        Cache budget.  A cached list is charged 16 bytes per posting;
        single lists larger than the whole budget bypass the cache.

    Only full-list reads are cached; zone-map point reads
    (:meth:`load_text_windows`) stay uncached — they are already small,
    and caching them would duplicate fragments of the same list.

    The reader is thread-safe: one instance may be shared by the batch
    executor's thread mode and the online service's worker pool.  A
    single reentrant lock guards the LRU dict, the byte counters, and
    the pin set; cache hits only pay a dict lookup under the lock, and
    misses serialize the inner read (callers that want parallel cold
    I/O keep using one cache per worker, as the batch executor does).
    """

    def __init__(self, inner, capacity_bytes: int = 32 * 1024 * 1024) -> None:
        if capacity_bytes <= 0:
            raise InvalidParameterError("capacity_bytes must be positive")
        self.inner = inner
        self.family = inner.family
        self.t = inner.t
        self.io_stats: IOStats = inner.io_stats
        self._capacity = int(capacity_bytes)
        self._used = 0
        self._lists: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()
        self._pinned: set[tuple[int, int]] = set()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- reader protocol ------------------------------------------------
    def list_length(self, func: int, minhash: int) -> int:
        with self._lock:
            cached = self._lists.get((func, minhash))
            if cached is not None:
                return int(cached.size)
        return self.inner.list_length(func, minhash)

    def load_list(self, func: int, minhash: int) -> np.ndarray:
        key = (func, minhash)
        with self._lock:
            cached = self._lists.get(key)
            if cached is not None:
                self._lists.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
            postings = self.inner.load_list(func, minhash)
            self._admit(key, postings)
            return postings

    def load_text_windows(self, func: int, minhash: int, text_id: int) -> np.ndarray:
        key = (func, minhash)
        with self._lock:
            cached = self._lists.get(key)
            if cached is not None:
                # Serve the point read from the cached full list.
                self._lists.move_to_end(key)
                self.hits += 1
                lo = int(np.searchsorted(cached["text"], text_id, side="left"))
                hi = int(np.searchsorted(cached["text"], text_id, side="right"))
                return cached[lo:hi]
        return self.inner.load_text_windows(func, minhash, text_id)

    def sketch_list_lengths(self, sketch: np.ndarray) -> np.ndarray:
        """Batched list lengths for one sketch (delegated to the inner
        reader — cached list sizes always match the inner lengths)."""
        inner = getattr(self.inner, "sketch_list_lengths", None)
        if inner is not None:
            return inner(sketch)
        return np.array(
            [
                self.inner.list_length(func, int(sketch[func]))
                for func in range(self.family.k)
            ],
            dtype=np.int64,
        )

    def load_texts_windows(
        self, func: int, minhash: int, text_ids: np.ndarray
    ) -> np.ndarray:
        """Batched point read, served from a cached full list when hot."""
        key = (func, minhash)
        with self._lock:
            cached = self._lists.get(key)
            if cached is not None:
                self._lists.move_to_end(key)
                self.hits += 1
                return extract_texts(cached, np.unique(np.asarray(text_ids)))
        inner = getattr(self.inner, "load_texts_windows", None)
        if inner is not None:
            return inner(func, minhash, text_ids)
        parts = [
            self.inner.load_text_windows(func, minhash, int(text_id))
            for text_id in np.unique(np.asarray(text_ids))
        ]
        parts = [part for part in parts if part.size]
        if not parts:
            return np.empty(0, dtype=POSTING_DTYPE)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    # -- batch pinning ------------------------------------------------
    def pin(self, func: int, minhash: int) -> bool:
        """Load a list (if needed) and exempt it from eviction.

        Returns ``True`` iff the list now resides pinned in the cache;
        a list that would not fit in the budget is left unpinned (the
        query path still works, it just pays the re-read).
        """
        key = (func, minhash)
        with self._lock:
            if key in self._pinned:
                return True
            if key not in self._lists:
                self.misses += 1
                postings = self.inner.load_list(func, minhash)
                self._admit(key, postings)
                if key not in self._lists:
                    return False
            self._pinned.add(key)
            return True

    def unpin_all(self) -> None:
        """Release every pin; pinned entries become ordinary LRU entries."""
        with self._lock:
            self._pinned.clear()

    @property
    def pinned_bytes(self) -> int:
        with self._lock:
            return sum(
                int(self._lists[key].size) * POSTING_BYTES
                for key in self._pinned
                if key in self._lists
            )

    # -- cache management ------------------------------------------------
    def _admit(self, key: tuple[int, int], postings: np.ndarray) -> None:
        # Callers hold self._lock.
        nbytes = int(postings.size) * POSTING_BYTES
        if nbytes > self._capacity:
            return
        while self._used + nbytes > self._capacity and self._lists:
            victim = next(
                (k for k in self._lists if k not in self._pinned), None
            )
            if victim is None:
                return  # everything resident is pinned; skip admission
            evicted = self._lists.pop(victim)
            self._used -= int(evicted.size) * POSTING_BYTES
            self.evictions += 1
        self._lists[key] = postings
        self._used += nbytes

    @property
    def cached_bytes(self) -> int:
        return self._used

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> CacheStats:
        """Current counters as an immutable snapshot."""
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                cached_bytes=self._used,
                capacity_bytes=self._capacity,
                pinned_bytes=self.pinned_bytes,
                cached_lists=len(self._lists),
                pinned_lists=len(self._pinned),
            )

    def clear(self) -> None:
        """Drop every cached list (pins included)."""
        with self._lock:
            self._lists.clear()
            self._pinned.clear()
            self._used = 0

    # -- passthrough introspection ----------------------------------------
    @property
    def num_postings(self) -> int:
        return self.inner.num_postings

    @property
    def nbytes(self) -> int:
        return self.inner.nbytes

    def list_lengths(self, func: int) -> np.ndarray:
        return self.inner.list_lengths(func)

    def list_keys(self, func: int) -> np.ndarray:
        return self.inner.list_keys(func)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CachedIndexReader({self.inner!r}, used={self._used}, "
            f"hit_rate={self.hit_rate:.2f})"
        )
