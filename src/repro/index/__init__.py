"""Inverted indexes over compact windows: structures, builders, storage."""

from repro.index.builder import (
    BuildStats,
    DEFAULT_BATCH_TEXTS,
    build_and_write_index,
    build_memory_index,
    merge_per_func_chunks,
)
from repro.index.blockcache import BlockCacheStats, DecodedBlockCache
from repro.index.cache import CachedIndexReader, CacheStats
from repro.index.cachepolicy import (
    CACHE_POLICIES,
    FrequencySketch,
    LruPolicy,
    TinyLfuPolicy,
    check_cache_policy,
    make_policy,
)
from repro.index.codec import (
    BLOCK_POSTINGS,
    CODECS,
    EncodedList,
    check_codec,
    decode_blocks,
    encode_list,
    pack_bits,
    unpack_bits_at,
)
from repro.index.costmodel import (
    CostEstimate,
    CostModelSearcher,
    PrefixPlan,
    estimate_cost,
    plan_prefix,
)
from repro.index.external import (
    ExternalBuildConfig,
    build_external_index,
)
from repro.index.incremental import IncrementalIndex
from repro.index.lsm import (
    BloomPrefilter,
    LiveIndex,
    LiveIndexConfig,
    LiveSearcher,
    Manifest,
    Memtable,
    UnionIndexReader,
    WriteAheadLog,
    manifest_exists,
)
from repro.index.merge import merge_disk_indexes
from repro.index.inverted import (
    InvertedIndexReader,
    IOStats,
    ListLengthProfile,
    MemoryInvertedIndex,
    POSTING_BYTES,
    POSTING_DTYPE,
)
from repro.index.parallel import build_memory_index_parallel
from repro.index.sharded import Shard, ShardedIndex, ShardedSearcher
from repro.index.stats import (
    IndexSummary,
    all_list_lengths,
    cutoff_for_top_fraction,
    zipf_tail_report,
)
from repro.index.sidecar import SIDECAR_FILE, read_sidecar, write_sidecar
from repro.index.storage import (
    DIR_FORMATS,
    DiskInvertedIndex,
    convert_directory,
    write_index,
)
from repro.index.validate import ValidationReport, validate_index
from repro.index.zonemap import ZoneMap, build_zone_map

__all__ = [
    "BLOCK_POSTINGS",
    "BlockCacheStats",
    "BuildStats",
    "CACHE_POLICIES",
    "CODECS",
    "CacheStats",
    "CachedIndexReader",
    "DecodedBlockCache",
    "FrequencySketch",
    "LruPolicy",
    "TinyLfuPolicy",
    "check_cache_policy",
    "make_policy",
    "EncodedList",
    "check_codec",
    "decode_blocks",
    "encode_list",
    "pack_bits",
    "unpack_bits_at",
    "DEFAULT_BATCH_TEXTS",
    "DIR_FORMATS",
    "SIDECAR_FILE",
    "convert_directory",
    "read_sidecar",
    "write_sidecar",
    "CostEstimate",
    "CostModelSearcher",
    "DiskInvertedIndex",
    "ExternalBuildConfig",
    "IncrementalIndex",
    "BloomPrefilter",
    "LiveIndex",
    "LiveIndexConfig",
    "LiveSearcher",
    "Manifest",
    "Memtable",
    "UnionIndexReader",
    "WriteAheadLog",
    "manifest_exists",
    "PrefixPlan",
    "Shard",
    "ShardedIndex",
    "ShardedSearcher",
    "ValidationReport",
    "validate_index",
    "IOStats",
    "IndexSummary",
    "InvertedIndexReader",
    "ListLengthProfile",
    "MemoryInvertedIndex",
    "POSTING_BYTES",
    "POSTING_DTYPE",
    "ZoneMap",
    "all_list_lengths",
    "build_and_write_index",
    "build_external_index",
    "build_memory_index",
    "build_memory_index_parallel",
    "build_zone_map",
    "cutoff_for_top_fraction",
    "estimate_cost",
    "merge_disk_indexes",
    "merge_per_func_chunks",
    "plan_prefix",
    "write_index",
    "zipf_tail_report",
]
