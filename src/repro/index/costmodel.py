"""Cost model for choosing the prefix-filter cutoff.

Section 3.5 notes that "a few works design cost-models to choose a good
cutoff of long and short inverted lists (a.k.a., prefix length)".  This
module implements such a model for our engine.

For a query whose ``k`` lists have lengths ``L_1 >= L_2 >= ... >= L_k``
(descending), marking the ``m`` longest lists as *long* costs:

* **eager I/O** — the ``k - m`` short lists are read in full:
  ``sum(L_{m+1..k}) * 16`` bytes;
* **lazy I/O** — each surviving candidate text triggers a zone-map
  point read of about ``zone_step`` postings in each long list:
  ``candidates * m * zone_step * 16`` bytes;
* **CPU** — the collision-count sweep is ``O(g log g)`` per text group;
  its total is proportional to the eagerly-loaded postings.

The number of candidates is estimated from the short-list mass: texts
whose short-list collisions reach ``beta - m``.  We approximate it by
the mass of the ``beta - m``-th largest contribution, which for the
typical skew is well-approximated by ``sum(short) / (beta - m)`` capped
by the shortest participating list.  The model only needs to *rank*
cutoffs, not predict absolute latency, so these constants suffice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.theory import collision_threshold
from repro.exceptions import InvalidParameterError
from repro.index.inverted import POSTING_BYTES


@dataclass(frozen=True)
class CostEstimate:
    """Modeled cost of one prefix choice for one query."""

    num_long: int
    eager_bytes: int
    lazy_bytes: int
    cpu_units: float

    @property
    def total(self) -> float:
        """Single scalar for ranking: bytes plus CPU-equivalent bytes."""
        return self.eager_bytes + self.lazy_bytes + self.cpu_units


@dataclass(frozen=True)
class PrefixPlan:
    """The chosen set of long lists for one query."""

    long_funcs: tuple[int, ...]
    estimate: CostEstimate


def estimate_cost(
    lengths: np.ndarray,
    num_long: int,
    beta: int,
    *,
    zone_step: int = 64,
    cpu_weight: float = 4.0,
) -> CostEstimate:
    """Model the cost of treating the ``num_long`` longest lists as long."""
    if num_long < 0 or num_long >= max(beta, 1):
        raise InvalidParameterError(
            f"num_long must be in [0, beta); got {num_long} with beta={beta}"
        )
    ordered = np.sort(np.asarray(lengths, dtype=np.int64))[::-1]
    short_mass = int(ordered[num_long:].sum())
    eager_bytes = short_mass * POSTING_BYTES
    alpha = beta - num_long
    # Candidate texts ~ texts that can reach alpha collisions among the
    # short lists; bounded by the alpha-th largest remaining list (a text
    # needs a window in at least alpha distinct lists).
    remaining = ordered[num_long:]
    if remaining.size >= alpha and alpha >= 1:
        candidates = float(remaining[alpha - 1])
    else:
        candidates = 0.0
    lazy_bytes = int(candidates * num_long * zone_step * POSTING_BYTES)
    cpu_units = cpu_weight * short_mass
    return CostEstimate(
        num_long=num_long,
        eager_bytes=eager_bytes,
        lazy_bytes=lazy_bytes,
        cpu_units=cpu_units,
    )


def plan_prefix(
    lengths: np.ndarray,
    k: int,
    theta: float,
    *,
    zone_step: int = 64,
    cpu_weight: float = 4.0,
) -> PrefixPlan:
    """Choose how many (and which) lists to prefix-filter for one query.

    Evaluates every feasible ``num_long`` in ``[0, beta)`` under
    :func:`estimate_cost` and returns the argmin, together with the
    identities of the chosen lists (the longest ones).
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.size != k:
        raise InvalidParameterError(f"expected {k} list lengths, got {lengths.size}")
    beta = collision_threshold(k, theta)
    best: CostEstimate | None = None
    for num_long in range(0, beta):
        if num_long > lengths.size:
            break
        estimate = estimate_cost(
            lengths, num_long, beta, zone_step=zone_step, cpu_weight=cpu_weight
        )
        if best is None or estimate.total < best.total:
            best = estimate
    assert best is not None
    order = np.argsort(lengths)[::-1]
    chosen = tuple(int(f) for f in order[: best.num_long])
    return PrefixPlan(long_funcs=chosen, estimate=best)


class CostModelSearcher:
    """A :class:`~repro.core.search.NearDuplicateSearcher` variant that
    picks its prefix cutoff per query with :func:`plan_prefix`.

    Implemented as a thin wrapper: for each query it computes the plan
    and delegates to a searcher configured with the matching explicit
    cutoff (the cutoff that marks exactly the planned lists as long).
    """

    def __init__(self, index, *, zone_step: int = 64, cpu_weight: float = 4.0) -> None:
        from repro.core.search import NearDuplicateSearcher

        self.index = index
        self._zone_step = zone_step
        self._cpu_weight = cpu_weight
        self._searcher_factory = lambda cutoff: NearDuplicateSearcher(
            index, long_list_cutoff=cutoff
        )

    def search(self, query: np.ndarray, theta: float, **kwargs):
        from repro.core.search import sketch_lengths

        family = self.index.family
        sketch = family.sketch(np.asarray(query))
        lengths = sketch_lengths(self.index, sketch, family.k)
        plan = plan_prefix(
            lengths,
            family.k,
            theta,
            zone_step=self._zone_step,
            cpu_weight=self._cpu_weight,
        )
        if plan.long_funcs:
            # Cutoff just below the shortest planned-long list marks
            # exactly the planned lists long (ties resolved by the
            # searcher's beta cap, which the plan already respects).
            cutoff = int(lengths[list(plan.long_funcs)].min()) - 1
            cutoff = max(cutoff, 0)
            if cutoff == 0:
                cutoff = 1
        else:
            cutoff = 0  # disable filtering
        return self._searcher_factory(cutoff).search(query, theta, **kwargs)
