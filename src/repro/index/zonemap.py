"""Zone maps over long inverted lists (paper Section 3.5).

An inverted list stores its postings ordered by text identifier.  For
long lists, reading the whole list just to check whether one candidate
text appears in it wastes I/O; a *zone map* records the text id at
every ``step``-th posting, so a point lookup narrows the read to a
single zone of ``step`` postings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParameterError

#: Default sampling step (postings per zone).
DEFAULT_STEP = 64


@dataclass(frozen=True)
class ZoneMap:
    """Sampled text ids of one inverted list.

    Attributes
    ----------
    sample_texts:
        ``sample_texts[z]`` is the text id of posting ``z * step``.
    step:
        Number of postings per zone.
    length:
        Total number of postings in the underlying list.
    """

    sample_texts: np.ndarray
    step: int
    length: int

    def locate(self, text_id: int) -> tuple[int, int]:
        """Posting range ``[lo, hi)`` that may contain ``text_id``.

        Because postings are sorted by text id, all postings of
        ``text_id`` lie between the last sample ``<= text_id`` and the
        first sample ``> text_id``.  Returns an empty range when the
        zone map proves the text absent.
        """
        if self.length == 0:
            return (0, 0)
        # First zone whose leading text id is >= text_id: the text's
        # postings cannot start before the *previous* zone (a text can
        # span several zones, so `side="left"` minus one is required,
        # not "the last zone starting <= text_id").
        first = int(np.searchsorted(self.sample_texts, text_id, side="left"))
        lo = max(0, first - 1) * self.step
        # First zone whose leading text id is > text_id: that zone's
        # leading posting already belongs to a later text.
        nxt = int(np.searchsorted(self.sample_texts, text_id, side="right"))
        hi = min(self.length, nxt * self.step)
        if hi < lo:
            return (lo, lo)
        return (lo, hi)

    def locate_many(self, text_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`locate`: posting ranges for many text ids.

        Returns ``(lo, hi)`` arrays aligned with ``text_ids``; entry
        ``i`` is exactly ``locate(text_ids[i])``.  With ``text_ids``
        sorted ascending the ranges are non-decreasing, which lets the
        batched point-read path merge overlapping zones into a few
        contiguous reads.
        """
        text_ids = np.asarray(text_ids)
        if self.length == 0:
            zeros = np.zeros(text_ids.size, dtype=np.int64)
            return zeros, zeros.copy()
        first = np.searchsorted(self.sample_texts, text_ids, side="left")
        lo = np.maximum(0, first.astype(np.int64) - 1) * self.step
        nxt = np.searchsorted(self.sample_texts, text_ids, side="right")
        hi = np.minimum(self.length, nxt.astype(np.int64) * self.step)
        return lo, np.maximum(hi, lo)


def build_zone_map(text_ids: np.ndarray, step: int = DEFAULT_STEP) -> ZoneMap:
    """Build the zone map of a posting list's (sorted) text-id column."""
    if step <= 0:
        raise InvalidParameterError(f"step must be positive, got {step}")
    text_ids = np.asarray(text_ids)
    samples = text_ids[::step].astype(np.uint32)
    return ZoneMap(sample_texts=samples, step=step, length=int(text_ids.size))
