"""Interval sweeps for collision counting (paper Algorithms 4 and 5).

Query processing retrieves, per text, a group of compact windows whose
min-hash collided with the query.  A sequence ``T[i..j]`` collides with
the query as many times as there are windows ``(l, c, r)`` in the group
with ``l <= i <= c <= j <= r``.  Splitting each window into a *left
interval* ``[l, c]`` (which must contain ``i``) and a *right interval*
``[c, r]`` (which must contain ``j``) reduces the problem to two nested
endpoint sweeps:

* :func:`interval_scan` (Algorithm 5) sweeps the endpoints of a set of
  intervals and reports, for every maximal segment of the axis, the set
  of intervals covering it whenever that set has size ``>= alpha``.
* :func:`collision_count` (Algorithm 4) runs the sweep over the left
  intervals, and for every reported subset re-runs it over the
  corresponding right intervals, emitting rectangles
  ``[x, x'] x [y, y']`` of ``(i, j)`` pairs together with their exact
  collision count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.compact_windows import CompactWindow
from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class ScanResult:
    """One segment reported by :func:`interval_scan`.

    Attributes
    ----------
    members:
        Ids of the intervals covering the segment (in insertion order).
    start, end:
        Inclusive bounds of the segment of the axis covered by exactly
        this member set.
    """

    members: tuple[int, ...]
    start: int
    end: int


def interval_scan(
    intervals: Sequence[tuple[int, int]], alpha: int
) -> list[ScanResult]:
    """Algorithm 5: endpoint sweep over inclusive integer intervals.

    Parameters
    ----------
    intervals:
        ``(start, end)`` pairs with ``start <= end``; the id of an
        interval is its position in the sequence.
    alpha:
        Minimum size of a reported covering set.

    Returns
    -------
    One :class:`ScanResult` per maximal axis segment whose covering set
    has size ``>= alpha``.  Every point covered by ``>= alpha``
    intervals lies in exactly one reported segment, and that segment's
    member set is exactly the set of intervals covering the point
    (Lemma 1 of the paper).
    """
    if alpha < 1:
        raise InvalidParameterError(f"alpha must be >= 1, got {alpha}")
    if not intervals:
        return []
    events: list[tuple[int, int, int]] = []
    for ident, (start, end) in enumerate(intervals):
        if start > end:
            raise InvalidParameterError(f"interval {ident} has start > end: ({start}, {end})")
        events.append((start, 1, ident))
        events.append((end + 1, 0, ident))
    # Closing events sort before opening events at the same coordinate,
    # so the active set between two coordinates is computed correctly.
    events.sort()

    results: list[ScanResult] = []
    active: dict[int, None] = {}  # insertion-ordered set of interval ids
    idx = 0
    total = len(events)
    while idx < total:
        coord = events[idx][0]
        while idx < total and events[idx][0] == coord:
            _, is_open, ident = events[idx]
            if is_open:
                active[ident] = None
            else:
                del active[ident]
            idx += 1
        if len(active) >= alpha and idx < total:
            next_coord = events[idx][0]
            results.append(ScanResult(tuple(active), coord, next_coord - 1))
    return results


@dataclass(frozen=True)
class CollisionRectangle:
    """A rectangle of sequences sharing one exact collision count.

    Every sequence ``T[i..j]`` with ``i in [i_lo, i_hi]`` and
    ``j in [j_lo, j_hi]`` is contained in exactly ``count`` compact
    windows of the group that was scanned.  ``i <= j`` holds for every
    pair in the rectangle by construction (each member window has
    ``i <= c <= j``).
    """

    i_lo: int
    i_hi: int
    j_lo: int
    j_hi: int
    count: int

    def clip_min_length(self, min_length: int) -> "CollisionRectangle | None":
        """Restrict the rectangle to sequences with ``j - i + 1 >= min_length``.

        The constraint ``j >= i + min_length - 1`` cuts the rectangle
        with a diagonal; we keep the enclosing sub-rectangle where *at
        least one* valid pair exists and expose per-row clipping via
        :meth:`iter_spans`.  Returns ``None`` when no pair survives.
        """
        if self.j_hi - self.i_lo + 1 < min_length:
            return None
        return self

    def iter_spans(self, min_length: int = 1) -> Iterable[tuple[int, int]]:
        """Yield every ``(i, j)`` pair of the rectangle with length ``>= min_length``."""
        for i in range(self.i_lo, self.i_hi + 1):
            j_start = max(self.j_lo, i + min_length - 1)
            for j in range(j_start, self.j_hi + 1):
                yield (i, j)

    def span_count(self, min_length: int = 1) -> int:
        """Number of pairs :meth:`iter_spans` would yield, in closed form."""
        total = 0
        for i in range(self.i_lo, self.i_hi + 1):
            j_start = max(self.j_lo, i + min_length - 1)
            if j_start <= self.j_hi:
                total += self.j_hi - j_start + 1
        return total

    def widest_span(self, min_length: int = 1) -> tuple[int, int] | None:
        """The longest sequence in the rectangle, or ``None`` if none is valid."""
        if self.j_hi - self.i_lo + 1 < min_length:
            return None
        return (self.i_lo, self.j_hi)


def collision_count(
    windows: Sequence[CompactWindow] | np.ndarray, alpha: int
) -> list[CollisionRectangle]:
    """Algorithm 4: all sequences contained in ``>= alpha`` windows.

    Parameters
    ----------
    windows:
        Compact windows of one text whose min-hash collided with the
        query (one window per colliding hash function at most, when the
        group comes from the inverted indexes).
    alpha:
        The collision threshold (``beta = ceil(k * theta)`` during
        query processing, or the reduced threshold during prefix
        filtering).

    Returns
    -------
    Rectangles whose ``count`` is the *exact* number of windows in the
    group containing each of their sequences (``count >= alpha``).  The
    rectangles are pairwise disjoint: the left sweep partitions the
    ``i`` axis and, within one left segment, the right sweep partitions
    the ``j`` axis, so every qualifying ``(i, j)`` pair appears in
    exactly one rectangle.
    """
    if isinstance(windows, np.ndarray):
        lefts = windows["left"].astype(np.int64)
        centers = windows["center"].astype(np.int64)
        rights = windows["right"].astype(np.int64)
        left_intervals = list(zip(lefts.tolist(), centers.tolist()))
        center_list = centers.tolist()
        right_list = rights.tolist()
    else:
        left_intervals = [(w.left, w.center) for w in windows]
        center_list = [w.center for w in windows]
        right_list = [w.right for w in windows]

    results: list[CollisionRectangle] = []
    for left_group in interval_scan(left_intervals, alpha):
        right_intervals = [
            (center_list[ident], right_list[ident]) for ident in left_group.members
        ]
        for right_group in interval_scan(right_intervals, alpha):
            results.append(
                CollisionRectangle(
                    i_lo=left_group.start,
                    i_hi=left_group.end,
                    j_lo=right_group.start,
                    j_hi=right_group.end,
                    count=len(right_group.members),
                )
            )
    return results


def _sweep_groups(
    starts: np.ndarray,
    ends: np.ndarray,
    group_ids: np.ndarray,
    alpha: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized multi-group endpoint sweep (Algorithm 5, counting form).

    Sweeps the inclusive intervals ``[starts[i], ends[i]]`` of *every*
    group at once and returns, per maximal constant-coverage segment
    with coverage ``>= alpha``, the arrays ``(group, seg_start, seg_end,
    count)`` ordered by ``(group, segment coordinate)`` — exactly the
    order :func:`interval_scan` reports segments in, group by group.

    The trick that fuses the groups into one pass: events carry a
    composite ``group * span + coordinate`` key (``span`` exceeds every
    coordinate), so a single argsort keeps groups contiguous while
    ordering events within each group by coordinate with closing events
    first — and because every open has its close inside the same group,
    one global ``cumsum`` of the +1/−1 deltas *is* the per-group active
    count (each group's events net to zero before the next begins).
    """
    empty = np.empty(0, dtype=np.int64)
    n = int(starts.size)
    if n == 0:
        return empty, empty, empty, empty
    starts = starts.astype(np.int64, copy=False)
    ends = ends.astype(np.int64, copy=False)
    group_ids = group_ids.astype(np.int64, copy=False)
    span = int(ends.max()) + 2
    base = group_ids * span
    # Composite event keys: bit 0 orders closes (0) before opens (1) at
    # the same (group, coordinate); closing happens at ``end + 1``.
    keys = np.empty(2 * n, dtype=np.int64)
    keys[:n] = ((base + starts) << 1) | 1
    keys[n:] = (base + ends + 1) << 1
    order = np.argsort(keys)
    window = order % n  # event -> source interval
    deltas = np.where(order < n, 1, -1)
    active = np.cumsum(deltas)
    composite = keys[order] >> 1  # (group, coordinate), comparable
    ev_group = group_ids[window]
    ev_coord = composite - ev_group * span
    # A segment spans from one coordinate to the next *within a group*;
    # it is materialized at the last event of its coordinate batch.
    segment = np.zeros(2 * n, dtype=bool)
    segment[:-1] = (
        (composite[1:] != composite[:-1])
        & (ev_group[1:] == ev_group[:-1])
        & (active[:-1] >= alpha)
    )
    found = np.flatnonzero(segment)
    return (
        ev_group[found],
        ev_coord[found],
        ev_coord[found + 1] - 1,
        active[found],
    )


@dataclass(frozen=True)
class FusedRectangles:
    """Column-oriented output of :func:`fused_collision_count`.

    One row per :class:`CollisionRectangle`, tagged with the id of the
    window group that produced it.  ``group`` is non-decreasing, and
    within a group rows follow the exact emission order of
    :func:`collision_count` (left segment, then right segment, both in
    coordinate order), so slicing by group reproduces the per-group
    rectangle lists of the scalar oracle.
    """

    group: np.ndarray
    i_lo: np.ndarray
    i_hi: np.ndarray
    j_lo: np.ndarray
    j_hi: np.ndarray
    count: np.ndarray

    @property
    def size(self) -> int:
        return int(self.group.size)

    def filtered(self, mask: np.ndarray) -> "FusedRectangles":
        """Rows where ``mask`` holds (e.g. the min-length filter)."""
        return FusedRectangles(
            self.group[mask],
            self.i_lo[mask],
            self.i_hi[mask],
            self.j_lo[mask],
            self.j_hi[mask],
            self.count[mask],
        )

    def group_slice(self, group: int) -> tuple[int, int]:
        """Row range ``[lo, hi)`` of one group's rectangles."""
        lo = int(np.searchsorted(self.group, group, side="left"))
        hi = int(np.searchsorted(self.group, group, side="right"))
        return lo, hi

    def rectangles(self, lo: int = 0, hi: int | None = None) -> list[CollisionRectangle]:
        """Materialize rows ``[lo, hi)`` as :class:`CollisionRectangle`\\ s."""
        if hi is None:
            hi = self.size
        return [
            CollisionRectangle(i_lo=a, i_hi=b, j_lo=c, j_hi=d, count=e)
            for a, b, c, d, e in zip(
                self.i_lo[lo:hi].tolist(),
                self.i_hi[lo:hi].tolist(),
                self.j_lo[lo:hi].tolist(),
                self.j_hi[lo:hi].tolist(),
                self.count[lo:hi].tolist(),
            )
        ]


def fused_collision_count(
    lefts: np.ndarray,
    centers: np.ndarray,
    rights: np.ndarray,
    group_ids: np.ndarray,
    alpha: int,
) -> FusedRectangles:
    """Algorithm 4 over many window groups in one vectorized pass.

    Equivalent to running :func:`collision_count` on every group
    separately (the property-test oracle), but the per-group Python
    sweep is replaced by three flat-array passes:

    1. one global left sweep (:func:`_sweep_groups`) over all
       ``[left, center]`` intervals finds every qualifying start
       segment of every group;
    2. the member windows of all start segments are extracted with a
       single batched ``searchsorted`` over composite ``(group, left)``
       keys plus one center-coordinate mask — no per-segment loop;
    3. one global right sweep over the members' ``[center, right]``
       intervals, keyed by start segment, emits the rectangles.

    Parameters
    ----------
    lefts, centers, rights:
        Window coordinates, **sorted by** ``(group_ids, lefts)``.
    group_ids:
        Dense group labels ``0 .. G-1``, non-decreasing, aligned with
        the coordinate arrays (one group per candidate text during
        query processing).
    alpha:
        Collision threshold (``>= 1``).
    """
    if alpha < 1:
        raise InvalidParameterError(f"alpha must be >= 1, got {alpha}")
    empty = np.empty(0, dtype=np.int64)
    nothing = FusedRectangles(empty, empty, empty, empty, empty, empty)
    n = int(lefts.size)
    if n == 0:
        return nothing
    lefts = lefts.astype(np.int64, copy=False)
    centers = centers.astype(np.int64, copy=False)
    rights = rights.astype(np.int64, copy=False)
    group_ids = group_ids.astype(np.int64, copy=False)

    seg_group, seg_start, seg_end, _ = _sweep_groups(
        lefts, centers, group_ids, alpha
    )
    if seg_group.size == 0:
        return nothing

    # Members of a start segment beginning at ``s`` in group ``g`` are
    # the windows with ``left <= s <= center``.  With windows sorted by
    # (group, left), the left constraint is one batched searchsorted
    # over composite keys; the center constraint is a mask.
    span = int(rights.max()) + 2
    left_keys = group_ids * span + lefts
    num_groups = int(group_ids[-1]) + 1
    group_starts = np.searchsorted(group_ids, np.arange(num_groups))
    upper = np.searchsorted(left_keys, seg_group * span + seg_start, side="right")
    lower = group_starts[seg_group]
    counts = upper - lower
    offsets = np.cumsum(counts) - counts
    member = (
        np.arange(int(counts.sum()), dtype=np.int64)
        - np.repeat(offsets, counts)
        + np.repeat(lower, counts)
    )
    seg_of_member = np.repeat(
        np.arange(seg_group.size, dtype=np.int64), counts
    )
    covered = centers[member] >= np.repeat(seg_start, counts)
    member = member[covered]
    seg_of_member = seg_of_member[covered]

    rect_seg, j_lo, j_hi, rect_count = _sweep_groups(
        centers[member], rights[member], seg_of_member, alpha
    )
    return FusedRectangles(
        group=seg_group[rect_seg],
        i_lo=seg_start[rect_seg],
        i_hi=seg_end[rect_seg],
        j_lo=j_lo,
        j_hi=j_hi,
        count=rect_count,
    )


def max_collisions(
    windows: Sequence[CompactWindow] | np.ndarray, i: int, j: int
) -> int:
    """Brute-force collision count of one sequence (test helper)."""
    if isinstance(windows, np.ndarray):
        return int(
            np.count_nonzero(
                (windows["left"] <= i) & (i <= windows["center"]) & (windows["center"] <= j) & (j <= windows["right"])
            )
        )
    return sum(1 for w in windows if w.contains(i, j))
