"""Interval sweeps for collision counting (paper Algorithms 4 and 5).

Query processing retrieves, per text, a group of compact windows whose
min-hash collided with the query.  A sequence ``T[i..j]`` collides with
the query as many times as there are windows ``(l, c, r)`` in the group
with ``l <= i <= c <= j <= r``.  Splitting each window into a *left
interval* ``[l, c]`` (which must contain ``i``) and a *right interval*
``[c, r]`` (which must contain ``j``) reduces the problem to two nested
endpoint sweeps:

* :func:`interval_scan` (Algorithm 5) sweeps the endpoints of a set of
  intervals and reports, for every maximal segment of the axis, the set
  of intervals covering it whenever that set has size ``>= alpha``.
* :func:`collision_count` (Algorithm 4) runs the sweep over the left
  intervals, and for every reported subset re-runs it over the
  corresponding right intervals, emitting rectangles
  ``[x, x'] x [y, y']`` of ``(i, j)`` pairs together with their exact
  collision count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.compact_windows import CompactWindow
from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class ScanResult:
    """One segment reported by :func:`interval_scan`.

    Attributes
    ----------
    members:
        Ids of the intervals covering the segment (in insertion order).
    start, end:
        Inclusive bounds of the segment of the axis covered by exactly
        this member set.
    """

    members: tuple[int, ...]
    start: int
    end: int


def interval_scan(
    intervals: Sequence[tuple[int, int]], alpha: int
) -> list[ScanResult]:
    """Algorithm 5: endpoint sweep over inclusive integer intervals.

    Parameters
    ----------
    intervals:
        ``(start, end)`` pairs with ``start <= end``; the id of an
        interval is its position in the sequence.
    alpha:
        Minimum size of a reported covering set.

    Returns
    -------
    One :class:`ScanResult` per maximal axis segment whose covering set
    has size ``>= alpha``.  Every point covered by ``>= alpha``
    intervals lies in exactly one reported segment, and that segment's
    member set is exactly the set of intervals covering the point
    (Lemma 1 of the paper).
    """
    if alpha < 1:
        raise InvalidParameterError(f"alpha must be >= 1, got {alpha}")
    if not intervals:
        return []
    events: list[tuple[int, int, int]] = []
    for ident, (start, end) in enumerate(intervals):
        if start > end:
            raise InvalidParameterError(f"interval {ident} has start > end: ({start}, {end})")
        events.append((start, 1, ident))
        events.append((end + 1, 0, ident))
    # Closing events sort before opening events at the same coordinate,
    # so the active set between two coordinates is computed correctly.
    events.sort()

    results: list[ScanResult] = []
    active: dict[int, None] = {}  # insertion-ordered set of interval ids
    idx = 0
    total = len(events)
    while idx < total:
        coord = events[idx][0]
        while idx < total and events[idx][0] == coord:
            _, is_open, ident = events[idx]
            if is_open:
                active[ident] = None
            else:
                del active[ident]
            idx += 1
        if len(active) >= alpha and idx < total:
            next_coord = events[idx][0]
            results.append(ScanResult(tuple(active), coord, next_coord - 1))
    return results


@dataclass(frozen=True)
class CollisionRectangle:
    """A rectangle of sequences sharing one exact collision count.

    Every sequence ``T[i..j]`` with ``i in [i_lo, i_hi]`` and
    ``j in [j_lo, j_hi]`` is contained in exactly ``count`` compact
    windows of the group that was scanned.  ``i <= j`` holds for every
    pair in the rectangle by construction (each member window has
    ``i <= c <= j``).
    """

    i_lo: int
    i_hi: int
    j_lo: int
    j_hi: int
    count: int

    def clip_min_length(self, min_length: int) -> "CollisionRectangle | None":
        """Restrict the rectangle to sequences with ``j - i + 1 >= min_length``.

        The constraint ``j >= i + min_length - 1`` cuts the rectangle
        with a diagonal; we keep the enclosing sub-rectangle where *at
        least one* valid pair exists and expose per-row clipping via
        :meth:`iter_spans`.  Returns ``None`` when no pair survives.
        """
        if self.j_hi - self.i_lo + 1 < min_length:
            return None
        return self

    def iter_spans(self, min_length: int = 1) -> Iterable[tuple[int, int]]:
        """Yield every ``(i, j)`` pair of the rectangle with length ``>= min_length``."""
        for i in range(self.i_lo, self.i_hi + 1):
            j_start = max(self.j_lo, i + min_length - 1)
            for j in range(j_start, self.j_hi + 1):
                yield (i, j)

    def span_count(self, min_length: int = 1) -> int:
        """Number of pairs :meth:`iter_spans` would yield, in closed form."""
        total = 0
        for i in range(self.i_lo, self.i_hi + 1):
            j_start = max(self.j_lo, i + min_length - 1)
            if j_start <= self.j_hi:
                total += self.j_hi - j_start + 1
        return total

    def widest_span(self, min_length: int = 1) -> tuple[int, int] | None:
        """The longest sequence in the rectangle, or ``None`` if none is valid."""
        if self.j_hi - self.i_lo + 1 < min_length:
            return None
        return (self.i_lo, self.j_hi)


def collision_count(
    windows: Sequence[CompactWindow] | np.ndarray, alpha: int
) -> list[CollisionRectangle]:
    """Algorithm 4: all sequences contained in ``>= alpha`` windows.

    Parameters
    ----------
    windows:
        Compact windows of one text whose min-hash collided with the
        query (one window per colliding hash function at most, when the
        group comes from the inverted indexes).
    alpha:
        The collision threshold (``beta = ceil(k * theta)`` during
        query processing, or the reduced threshold during prefix
        filtering).

    Returns
    -------
    Rectangles whose ``count`` is the *exact* number of windows in the
    group containing each of their sequences (``count >= alpha``).  The
    rectangles are pairwise disjoint: the left sweep partitions the
    ``i`` axis and, within one left segment, the right sweep partitions
    the ``j`` axis, so every qualifying ``(i, j)`` pair appears in
    exactly one rectangle.
    """
    if isinstance(windows, np.ndarray):
        lefts = windows["left"].astype(np.int64)
        centers = windows["center"].astype(np.int64)
        rights = windows["right"].astype(np.int64)
        left_intervals = list(zip(lefts.tolist(), centers.tolist()))
        center_list = centers.tolist()
        right_list = rights.tolist()
    else:
        left_intervals = [(w.left, w.center) for w in windows]
        center_list = [w.center for w in windows]
        right_list = [w.right for w in windows]

    results: list[CollisionRectangle] = []
    for left_group in interval_scan(left_intervals, alpha):
        right_intervals = [
            (center_list[ident], right_list[ident]) for ident in left_group.members
        ]
        for right_group in interval_scan(right_intervals, alpha):
            results.append(
                CollisionRectangle(
                    i_lo=left_group.start,
                    i_hi=left_group.end,
                    j_lo=right_group.start,
                    j_hi=right_group.end,
                    count=len(right_group.members),
                )
            )
    return results


def max_collisions(
    windows: Sequence[CompactWindow] | np.ndarray, i: int, j: int
) -> int:
    """Brute-force collision count of one sequence (test helper)."""
    if isinstance(windows, np.ndarray):
        return int(
            np.count_nonzero(
                (windows["left"] <= i) & (i <= windows["center"]) & (windows["center"] <= j) & (j <= windows["right"])
            )
        )
    return sum(1 for w in windows if w.contains(i, j))
