"""Compact-window generation (paper Section 3.3, Algorithm 2).

A *compact window* ``(l, c, r)`` over a text ``T`` (with respect to one
hash function ``f``) represents every sequence ``T[i..j]`` with
``l <= i <= c <= j <= r``; all of them share the min-hash ``f(T[c])``
and the window is maximal.  For a length threshold ``t``, a window is
*valid* when its width ``r - l + 1 >= t``; Theorem 1 shows a text with
``n`` distinct tokens yields ``2(n+1)/(t+1) - 1`` valid windows in
expectation and that every sequence of length ``>= t`` lies in exactly
one valid window.

Three generators are provided, all producing the identical window set
(the property tests assert this):

* :func:`generate_compact_windows` — explicit-stack divide and conquer
  driven by an RMQ structure.  This is Algorithm 2 made iteration-safe
  (Python's recursion limit rules out the literal recursive form for
  long texts).
* :func:`generate_compact_windows_recursive` — the literal Algorithm 2,
  kept as a test oracle for short inputs.
* :func:`generate_compact_windows_stack` — an ``O(n)`` monotone-stack
  formulation.  The valid windows are exactly the nodes of the hash
  array's Cartesian tree whose subtree span is wide enough, so the two
  "previous smaller / next smaller" sweeps recover them without any RMQ
  structure.  This is the production fast path.

Indices are 0-based throughout the library; the paper's ``T[l..r]``
with 1-based inclusive bounds maps to our ``(l-1, r-1)`` inclusive.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.core.rmq import make_rmq
from repro.exceptions import InvalidParameterError

#: Structured dtype for bulk window storage: one record per window.
WINDOW_DTYPE = np.dtype(
    [("left", np.uint32), ("center", np.uint32), ("right", np.uint32)]
)


class CompactWindow(NamedTuple):
    """A compact window ``(left, center, right)`` with inclusive bounds."""

    left: int
    center: int
    right: int

    @property
    def width(self) -> int:
        """Number of tokens spanned by the window."""
        return self.right - self.left + 1

    def contains(self, i: int, j: int) -> bool:
        """Whether the sequence ``T[i..j]`` belongs to this window."""
        return self.left <= i <= self.center <= j <= self.right


def _check_threshold(t: int) -> None:
    if t < 1:
        raise InvalidParameterError(f"length threshold t must be >= 1, got {t}")


def generate_compact_windows_recursive(
    token_hashes: np.ndarray, t: int
) -> list[CompactWindow]:
    """Literal Algorithm 2: recursive divide and conquer.

    Only suitable for short inputs (recursion depth is ``O(n)`` in the
    worst case); used as a correctness oracle in the tests.
    """
    _check_threshold(t)
    hashes = np.asarray(token_hashes)
    windows: list[CompactWindow] = []
    if hashes.size == 0:
        return windows
    rmq = make_rmq(hashes)

    def recurse(lo: int, hi: int) -> None:
        if hi - lo + 1 < t:
            return
        center = rmq.query(lo, hi)
        windows.append(CompactWindow(lo, center, hi))
        recurse(lo, center - 1)
        recurse(center + 1, hi)

    recurse(0, hashes.size - 1)
    return windows


def generate_compact_windows(
    token_hashes: np.ndarray, t: int, rmq_backend: str = "sparse"
) -> list[CompactWindow]:
    """Algorithm 2 with an explicit stack instead of recursion.

    Parameters
    ----------
    token_hashes:
        Hash value of each token position (``f(T[p])`` for every ``p``).
    t:
        Length threshold; windows narrower than ``t`` are pruned along
        with their entire recursion subtree.
    rmq_backend:
        Which RMQ structure to use (``"sparse"``, ``"segment"`` or
        ``"block"``); see :mod:`repro.core.rmq`.
    """
    _check_threshold(t)
    hashes = np.asarray(token_hashes)
    windows: list[CompactWindow] = []
    if hashes.size < t:
        return windows
    rmq = make_rmq(hashes, rmq_backend)
    stack: list[tuple[int, int]] = [(0, hashes.size - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo + 1 < t:
            continue
        center = rmq.query(lo, hi)
        windows.append(CompactWindow(lo, center, hi))
        stack.append((lo, center - 1))
        stack.append((center + 1, hi))
    return windows


def generate_compact_windows_stack(token_hashes: np.ndarray, t: int) -> np.ndarray:
    """``O(n)`` monotone-stack window generation (production fast path).

    The divide-and-conquer recursion of Algorithm 2 with leftmost
    tie-breaking builds the Cartesian tree of the hash array: the
    window of position ``c`` spans ``(l, r)`` where ``l`` is one past
    the closest previous position with hash ``<= hash[c]`` and ``r`` is
    one before the closest next position with hash ``< hash[c]``
    (strict on the right so that the leftmost of equal minima becomes
    the ancestor).  Two sweeps with a monotone stack compute all spans
    in ``O(n)``; pruning to ``width >= t`` yields exactly the valid
    windows Algorithm 2 emits.

    Returns a structured array with fields ``left``, ``center``,
    ``right`` (see :data:`WINDOW_DTYPE`), sorted by ``center``.
    """
    _check_threshold(t)
    hashes = np.asarray(token_hashes)
    n = hashes.size
    if n < t:
        return np.empty(0, dtype=WINDOW_DTYPE)

    # Plain Python ints are ~5x faster than numpy scalars in this loop.
    values = hashes.tolist()
    left_list = [0] * n
    right_list = [0] * n

    stack: list[int] = []
    for i in range(n):
        h = values[i]
        while stack and values[stack[-1]] > h:
            stack.pop()
        left_list[i] = stack[-1] + 1 if stack else 0
        stack.append(i)

    stack.clear()
    for i in range(n - 1, -1, -1):
        h = values[i]
        while stack and values[stack[-1]] >= h:
            stack.pop()
        right_list[i] = stack[-1] - 1 if stack else n - 1
        stack.append(i)

    left = np.asarray(left_list, dtype=np.int64)
    right = np.asarray(right_list, dtype=np.int64)
    widths = right - left + 1
    keep = widths >= t
    out = np.empty(int(keep.sum()), dtype=WINDOW_DTYPE)
    out["left"] = left[keep]
    out["center"] = np.flatnonzero(keep)
    out["right"] = right[keep]
    return out


def windows_to_array(windows: list[CompactWindow]) -> np.ndarray:
    """Convert a list of :class:`CompactWindow` to a structured array."""
    out = np.empty(len(windows), dtype=WINDOW_DTYPE)
    for idx, win in enumerate(windows):
        out[idx] = (win.left, win.center, win.right)
    return out


def array_to_windows(array: np.ndarray) -> list[CompactWindow]:
    """Convert a structured window array back to :class:`CompactWindow` objects."""
    return [
        CompactWindow(int(rec["left"]), int(rec["center"]), int(rec["right"]))
        for rec in array
    ]


def window_minhashes(
    windows: np.ndarray, token_hashes: np.ndarray
) -> np.ndarray:
    """Min-hash value of each window: the hash of its center token."""
    return np.asarray(token_hashes, dtype=np.uint32)[windows["center"].astype(np.int64)]


def enumerate_covered_sequences(
    window: CompactWindow, min_length: int = 1
) -> list[tuple[int, int]]:
    """All sequences ``(i, j)`` represented by ``window`` with length ``>= min_length``.

    Quadratic in the window width — intended for tests and examples.
    """
    spans = []
    for i in range(window.left, window.center + 1):
        for j in range(max(window.center, i + min_length - 1), window.right + 1):
            spans.append((i, j))
    return spans
