"""Compact-window generation (paper Section 3.3, Algorithm 2).

A *compact window* ``(l, c, r)`` over a text ``T`` (with respect to one
hash function ``f``) represents every sequence ``T[i..j]`` with
``l <= i <= c <= j <= r``; all of them share the min-hash ``f(T[c])``
and the window is maximal.  For a length threshold ``t``, a window is
*valid* when its width ``r - l + 1 >= t``; Theorem 1 shows a text with
``n`` distinct tokens yields ``2(n+1)/(t+1) - 1`` valid windows in
expectation and that every sequence of length ``>= t`` lies in exactly
one valid window.

Four generators are provided, all producing the identical window set
(the property tests assert this):

* :func:`generate_compact_windows` — explicit-stack divide and conquer
  driven by an RMQ structure.  This is Algorithm 2 made iteration-safe
  (Python's recursion limit rules out the literal recursive form for
  long texts).
* :func:`generate_compact_windows_recursive` — the literal Algorithm 2,
  kept as a test oracle for short inputs.
* :func:`generate_compact_windows_stack` — an ``O(n)`` monotone-stack
  formulation.  The valid windows are exactly the nodes of the hash
  array's Cartesian tree whose subtree span is wide enough, so the two
  "previous smaller / next smaller" sweeps recover them without any RMQ
  structure.  This is the single-function reference path and the
  equivalence oracle for the vectorized generator.
* :func:`generate_compact_windows_kwide` — the production fast path for
  index construction: takes the ``(k, n)`` matrix of all ``k`` hash
  rows of one text and computes every row's windows simultaneously with
  vectorized pointer-jumping, so the interpreter cost no longer scales
  with ``k``.

Indices are 0-based throughout the library; the paper's ``T[l..r]``
with 1-based inclusive bounds maps to our ``(l-1, r-1)`` inclusive.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.core.rmq import make_rmq
from repro.exceptions import InvalidParameterError

#: Structured dtype for bulk window storage: one record per window.
WINDOW_DTYPE = np.dtype(
    [("left", np.uint32), ("center", np.uint32), ("right", np.uint32)]
)


class CompactWindow(NamedTuple):
    """A compact window ``(left, center, right)`` with inclusive bounds."""

    left: int
    center: int
    right: int

    @property
    def width(self) -> int:
        """Number of tokens spanned by the window."""
        return self.right - self.left + 1

    def contains(self, i: int, j: int) -> bool:
        """Whether the sequence ``T[i..j]`` belongs to this window."""
        return self.left <= i <= self.center <= j <= self.right


def _check_threshold(t: int) -> None:
    if t < 1:
        raise InvalidParameterError(f"length threshold t must be >= 1, got {t}")


def generate_compact_windows_recursive(
    token_hashes: np.ndarray, t: int
) -> list[CompactWindow]:
    """Literal Algorithm 2: recursive divide and conquer.

    Only suitable for short inputs (recursion depth is ``O(n)`` in the
    worst case); used as a correctness oracle in the tests.
    """
    _check_threshold(t)
    hashes = np.asarray(token_hashes)
    windows: list[CompactWindow] = []
    if hashes.size == 0:
        return windows
    rmq = make_rmq(hashes)

    def recurse(lo: int, hi: int) -> None:
        if hi - lo + 1 < t:
            return
        center = rmq.query(lo, hi)
        windows.append(CompactWindow(lo, center, hi))
        recurse(lo, center - 1)
        recurse(center + 1, hi)

    recurse(0, hashes.size - 1)
    return windows


def generate_compact_windows(
    token_hashes: np.ndarray, t: int, rmq_backend: str = "sparse"
) -> list[CompactWindow]:
    """Algorithm 2 with an explicit stack instead of recursion.

    Parameters
    ----------
    token_hashes:
        Hash value of each token position (``f(T[p])`` for every ``p``).
    t:
        Length threshold; windows narrower than ``t`` are pruned along
        with their entire recursion subtree.
    rmq_backend:
        Which RMQ structure to use (``"sparse"``, ``"segment"`` or
        ``"block"``); see :mod:`repro.core.rmq`.
    """
    _check_threshold(t)
    hashes = np.asarray(token_hashes)
    windows: list[CompactWindow] = []
    if hashes.size < t:
        return windows
    rmq = make_rmq(hashes, rmq_backend)
    stack: list[tuple[int, int]] = [(0, hashes.size - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo + 1 < t:
            continue
        center = rmq.query(lo, hi)
        windows.append(CompactWindow(lo, center, hi))
        stack.append((lo, center - 1))
        stack.append((center + 1, hi))
    return windows


def generate_compact_windows_stack(token_hashes: np.ndarray, t: int) -> np.ndarray:
    """``O(n)`` monotone-stack window generation (production fast path).

    The divide-and-conquer recursion of Algorithm 2 with leftmost
    tie-breaking builds the Cartesian tree of the hash array: the
    window of position ``c`` spans ``(l, r)`` where ``l`` is one past
    the closest previous position with hash ``<= hash[c]`` and ``r`` is
    one before the closest next position with hash ``< hash[c]``
    (strict on the right so that the leftmost of equal minima becomes
    the ancestor).  Two sweeps with a monotone stack compute all spans
    in ``O(n)``; pruning to ``width >= t`` yields exactly the valid
    windows Algorithm 2 emits.

    Returns a structured array with fields ``left``, ``center``,
    ``right`` (see :data:`WINDOW_DTYPE`), sorted by ``center``.
    """
    _check_threshold(t)
    hashes = np.asarray(token_hashes)
    n = hashes.size
    if n < t:
        return np.empty(0, dtype=WINDOW_DTYPE)

    # Plain Python ints are ~5x faster than numpy scalars in this loop.
    values = hashes.tolist()
    left_list = [0] * n
    right_list = [0] * n

    stack: list[int] = []
    for i in range(n):
        h = values[i]
        while stack and values[stack[-1]] > h:
            stack.pop()
        left_list[i] = stack[-1] + 1 if stack else 0
        stack.append(i)

    stack.clear()
    for i in range(n - 1, -1, -1):
        h = values[i]
        while stack and values[stack[-1]] >= h:
            stack.pop()
        right_list[i] = stack[-1] - 1 if stack else n - 1
        stack.append(i)

    left = np.asarray(left_list, dtype=np.int64)
    right = np.asarray(right_list, dtype=np.int64)
    widths = right - left + 1
    keep = widths >= t
    out = np.empty(int(keep.sum()), dtype=WINDOW_DTYPE)
    out["left"] = left[keep]
    out["center"] = np.flatnonzero(keep)
    out["right"] = right[keep]
    return out


def _kwide_spans(hash_matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Window spans of every ``(row, position)`` cell of a ``(k, n)`` matrix.

    Computes, for all ``k`` rows simultaneously, the previous position
    with hash ``<=`` the cell's hash and the next position with hash
    strictly ``<`` it — the same quantities the monotone stack of
    :func:`generate_compact_windows_stack` derives one row at a time.
    Instead of a stack, each cell chases *candidate pointers*: the
    candidate of ``i`` starts at ``i - 1``, and while the candidate's
    hash disqualifies it, the cell jumps to the candidate's own
    (possibly still converging) pointer.  Every jump lands strictly
    further left and skips the candidate's whole subtree, so chains
    collapse like path-halving: the loop runs a handful of passes over
    a shrinking active set, each pass a few ``O(k * n)`` numpy
    operations, regardless of ``k``.

    Returns ``(left, right)`` inclusive window bounds, both ``(k, n)``
    ``int64`` arrays.
    """
    k, n = hash_matrix.shape
    flat = np.ascontiguousarray(hash_matrix).ravel()
    size = k * n
    # Pointers are flat cell indices; by induction every chase stays
    # inside its own row (initial pointers do, and jumps copy same-row
    # values), so a single out-of-row sentinel per direction suffices.
    ptr_dtype = np.int32 if size < np.iinfo(np.int32).max else np.int64

    # Previous position with hash <= own (leftmost-tie-break ancestor).
    # Sentinel -1 marks "no previous smaller"; row starts begin there.
    prev = np.arange(-1, size - 1, dtype=ptr_dtype)
    prev[0::n] = -1
    # First hop specialized: the candidate is the contiguous left
    # neighbour, so the comparison is a shifted array op, no gathers.
    pop = np.empty(size, dtype=bool)
    pop[0] = False
    np.greater(flat[:-1], flat[1:], out=pop[1:])
    pop[0::n] = False
    active = np.flatnonzero(pop).astype(ptr_dtype)
    values = flat[active]
    prev[active] = prev[active - 1]
    alive = prev[active] >= 0
    active, values = active[alive], values[alive]
    while active.size:
        cand = prev[active]
        jump = flat[cand] > values
        if not jump.any():
            break
        active, values = active[jump], values[jump]
        prev[active] = prev[cand[jump]]
        alive = prev[active] >= 0
        if not alive.all():
            active, values = active[alive], values[alive]

    # Next position with hash strictly < own (strict, so the leftmost of
    # equal minima becomes the ancestor).  Sentinel: one past the end.
    nxt = np.arange(1, size + 1, dtype=np.int64 if size + 1 > np.iinfo(np.int32).max else ptr_dtype)
    nxt[n - 1 :: n] = size
    pop[size - 1] = False
    np.greater_equal(flat[1:], flat[:-1], out=pop[:-1])
    pop[n - 1 :: n] = False
    active = np.flatnonzero(pop).astype(ptr_dtype)
    values = flat[active]
    nxt[active] = nxt[active + 1]
    alive = nxt[active] < size
    active, values = active[alive], values[alive]
    while active.size:
        cand = nxt[active]
        jump = flat[cand] >= values
        if not jump.any():
            break
        active, values = active[jump], values[jump]
        nxt[active] = nxt[cand[jump]]
        alive = nxt[active] < size
        if not alive.all():
            active, values = active[alive], values[alive]

    # Convert flat pointers back to per-row column bounds.
    row_base = (np.arange(k, dtype=np.int64) * n)[:, None]
    prev2d = prev.reshape(k, n).astype(np.int64)
    nxt2d = nxt.reshape(k, n).astype(np.int64)
    left = np.where(prev2d >= 0, prev2d - row_base + 1, 0)
    right = np.where(nxt2d < size, nxt2d - row_base - 1, n - 1)
    return left, right


def generate_compact_windows_kwide(
    hash_matrix: np.ndarray, t: int
) -> list[np.ndarray]:
    """Vectorized window generation for all ``k`` hash rows of one text.

    ``hash_matrix`` is the ``(k, n)`` matrix whose row ``f`` holds
    ``f_f(T[p])`` for every position ``p`` (one
    ``vocab_hashes[:, token_idx]`` gather, or
    :meth:`~repro.core.hashing.HashFamily.hash_tokens_all`).  Returns a
    list of ``k`` structured arrays; entry ``f`` is element-wise
    identical to ``generate_compact_windows_stack(hash_matrix[f], t)``.
    """
    _check_threshold(t)
    matrix = np.asarray(hash_matrix)
    if matrix.ndim != 2:
        raise InvalidParameterError(
            f"hash matrix must be 2-D (k, n), got shape {matrix.shape}"
        )
    k, n = matrix.shape
    if n < t:
        return [np.empty(0, dtype=WINDOW_DTYPE) for _ in range(k)]
    left, right = _kwide_spans(matrix)
    keep = (right - left + 1) >= t
    # One row-major extraction for all k rows, then split per row: the
    # boolean gathers and nonzero() walk the matrix once each instead of
    # k times.
    out = np.empty(int(np.count_nonzero(keep)), dtype=WINDOW_DTYPE)
    out["left"] = left[keep]
    out["center"] = np.nonzero(keep)[1]
    out["right"] = right[keep]
    bounds = np.cumsum(np.count_nonzero(keep, axis=1))[:-1]
    return np.split(out, bounds)


def windows_to_array(windows: list[CompactWindow]) -> np.ndarray:
    """Convert a list of :class:`CompactWindow` to a structured array."""
    out = np.empty(len(windows), dtype=WINDOW_DTYPE)
    for idx, win in enumerate(windows):
        out[idx] = (win.left, win.center, win.right)
    return out


def array_to_windows(array: np.ndarray) -> list[CompactWindow]:
    """Convert a structured window array back to :class:`CompactWindow` objects."""
    return [
        CompactWindow(int(rec["left"]), int(rec["center"]), int(rec["right"]))
        for rec in array
    ]


def window_minhashes(
    windows: np.ndarray, token_hashes: np.ndarray
) -> np.ndarray:
    """Min-hash value of each window: the hash of its center token."""
    return np.asarray(token_hashes, dtype=np.uint32)[windows["center"].astype(np.int64)]


def enumerate_covered_sequences(
    window: CompactWindow, min_length: int = 1
) -> list[tuple[int, int]]:
    """All sequences ``(i, j)`` represented by ``window`` with length ``>= min_length``.

    Quadratic in the window width — intended for tests and examples.
    """
    spans = []
    for i in range(window.left, window.center + 1):
        for j in range(max(window.center, i + min_length - 1), window.right + 1):
            spans.append((i, j))
    return spans
