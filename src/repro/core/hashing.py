"""Universal hashing of token identifiers for min-hash sketching.

The paper (Section 3.2) estimates the distinct Jaccard similarity of two
sequences with ``k`` independent random universal hash functions: the
fraction of min-hash collisions in the ``k`` trials is an unbiased
estimator of the Jaccard similarity with variance ``O(1/k)``.

Each function first applies a *multiply-shift* keyed transform
(``a * x + b mod 2^64`` with ``a`` a random odd 64-bit integer) and then
the splitmix64 finalizer (xorshift-multiply avalanche).  The keyed
transform makes the ``k`` functions pairwise independent draws; the
finalizer destroys the arithmetic structure multiply-shift alone would
leak (min-hash needs approximately min-wise independent functions, and
plain multiply-shift is badly biased on the contiguous token-id ranges
real vocabularies produce).  Everything vectorizes exactly with
``numpy``'s wrapping ``uint64`` arithmetic.  Hash outputs are 32-bit,
matching the paper's assumption that a min-hash value fits in a 4-byte
integer.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import InvalidParameterError

#: Number of output bits of every hash function in the family.
HASH_BITS = 32

#: Exclusive upper bound of hash values (``2 ** HASH_BITS``).
HASH_SPACE = 1 << HASH_BITS

_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _finalize(mixed: np.ndarray) -> np.ndarray:
    """splitmix64 avalanche: uniform, structure-free 64 -> 64 mixing."""
    with np.errstate(over="ignore"):
        mixed = (mixed ^ (mixed >> np.uint64(30))) * _MIX1
        mixed = (mixed ^ (mixed >> np.uint64(27))) * _MIX2
        mixed ^= mixed >> np.uint64(31)
    return mixed


class HashFamily:
    """A family of ``k`` independent universal hash functions over tokens.

    Parameters
    ----------
    k:
        Number of hash functions (the ``k`` of the paper's ``k``-mins
        sketch).
    seed:
        Seed for the pseudo-random draw of the family parameters.  Two
        families built with the same ``(k, seed)`` are identical, which
        is what makes an index file reusable across processes.

    Notes
    -----
    The family hashes *token identifiers* (unsigned integers), not
    strings.  Hashing a whole vocabulary once with
    :meth:`hash_vocabulary` and indexing into the resulting table is the
    fast path used during compact-window generation.
    """

    def __init__(self, k: int, seed: int = 0) -> None:
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        self.k = int(k)
        self.seed = int(seed)
        rng = np.random.default_rng(self.seed)
        # Odd multipliers make multiply-shift universal.
        self._a = rng.integers(1, 1 << 63, size=self.k, dtype=np.uint64) * np.uint64(2) + np.uint64(1)
        self._b = rng.integers(0, 1 << 63, size=self.k, dtype=np.uint64)

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    def hash_tokens(self, tokens: np.ndarray, func: int) -> np.ndarray:
        """Hash an array of token ids with hash function ``func``.

        Returns a ``uint32`` array of the same shape as ``tokens``.
        """
        self._check_func(func)
        x = np.asarray(tokens, dtype=np.uint64)
        with np.errstate(over="ignore"):
            mixed = x * self._a[func] + self._b[func]
        return (_finalize(mixed) >> np.uint64(64 - HASH_BITS)).astype(np.uint32)

    def hash_tokens_all(self, tokens: np.ndarray) -> np.ndarray:
        """Hash an array of token ids under all ``k`` functions at once.

        Returns a ``(k, len(tokens))`` ``uint32`` matrix; row ``f``
        equals ``hash_tokens(tokens, f)``.  This is the direct-hash
        counterpart of indexing a :meth:`hash_vocabulary` table with
        ``table[:, tokens]``, used when the token-id space is too large
        to precompute.
        """
        x = np.asarray(tokens, dtype=np.uint64)
        with np.errstate(over="ignore"):
            mixed = x[None, :] * self._a[:, None] + self._b[:, None]
        return (_finalize(mixed) >> np.uint64(64 - HASH_BITS)).astype(np.uint32)

    def hash_token(self, token: int, func: int) -> int:
        """Hash a single token id with hash function ``func``."""
        self._check_func(func)
        mixed = np.uint64(
            (int(self._a[func]) * int(token) + int(self._b[func])) % (1 << 64)
        )
        return int(_finalize(np.array([mixed]))[0]) >> (64 - HASH_BITS)

    def hash_vocabulary(self, vocab_size: int) -> np.ndarray:
        """Precompute the hash of every token id in ``[0, vocab_size)``.

        Returns a ``(k, vocab_size)`` ``uint32`` table; row ``i`` is the
        image of the vocabulary under hash function ``i``.
        """
        if vocab_size <= 0:
            raise InvalidParameterError(f"vocab_size must be positive, got {vocab_size}")
        ids = np.arange(vocab_size, dtype=np.uint64)
        with np.errstate(over="ignore"):
            mixed = ids[None, :] * self._a[:, None] + self._b[:, None]
        return (_finalize(mixed) >> np.uint64(64 - HASH_BITS)).astype(np.uint32)

    def minhash(self, tokens: np.ndarray, func: int) -> int:
        """Min-hash of a token sequence under hash function ``func``.

        The min-hash of a sequence is the minimum hash value over its
        *distinct* tokens; since ``min`` is idempotent the deduplication
        is implicit.
        """
        tokens = np.asarray(tokens)
        if tokens.size == 0:
            raise InvalidParameterError("cannot take the min-hash of an empty sequence")
        return int(self.hash_tokens(tokens, func).min())

    def sketch(self, tokens: np.ndarray) -> np.ndarray:
        """The ``k``-mins sketch of a sequence: all ``k`` min-hashes.

        Returns a ``uint32`` array of length ``k``.
        """
        tokens = np.asarray(tokens)
        if tokens.size == 0:
            raise InvalidParameterError("cannot sketch an empty sequence")
        x = np.unique(tokens).astype(np.uint64)
        with np.errstate(over="ignore"):
            mixed = x[None, :] * self._a[:, None] + self._b[:, None]
        hashed = (_finalize(mixed) >> np.uint64(64 - HASH_BITS)).astype(np.uint32)
        return hashed.min(axis=1)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serialize the family parameters to a JSON-friendly dict."""
        return {
            "k": self.k,
            "seed": self.seed,
            "a": [int(v) for v in self._a],
            "b": [int(v) for v in self._b],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HashFamily":
        """Rebuild a family from :meth:`to_dict` output.

        The stored ``a``/``b`` arrays take precedence over re-deriving
        them from the seed, so files written by other versions of the
        generator stay readable.
        """
        family = cls.__new__(cls)
        family.k = int(payload["k"])
        family.seed = int(payload.get("seed", 0))
        family._a = np.asarray(payload["a"], dtype=np.uint64)
        family._b = np.asarray(payload["b"], dtype=np.uint64)
        if family._a.shape != (family.k,) or family._b.shape != (family.k,):
            raise InvalidParameterError("hash family parameter arrays do not match k")
        return family

    def save(self, path: str | Path) -> None:
        """Write the family parameters to ``path`` as JSON."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "HashFamily":
        """Read a family previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------
    def _check_func(self, func: int) -> None:
        if not 0 <= func < self.k:
            raise InvalidParameterError(f"hash function index {func} out of range [0, {self.k})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashFamily):
            return NotImplemented
        return (
            self.k == other.k
            and np.array_equal(self._a, other._a)
            and np.array_equal(self._b, other._b)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashFamily(k={self.k}, seed={self.seed})"
