"""Exact similarity computation and match post-processing.

The search engine answers the *approximate* Definition 2 (min-hash
collision counting).  This module provides:

* exact distinct and multiset Jaccard similarity (Section 3.1), used by
  the brute-force baseline, by optional post-verification, and by the
  tests that compare the approximate output against ground truth;
* merging of overlapping reported sequences into disjoint spans, the
  paper's closing remark in Section 3.5.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


def distinct_jaccard(a: np.ndarray, b: np.ndarray) -> float:
    """Distinct Jaccard similarity: deduplicate, then |A∩B| / |A∪B|."""
    set_a = set(np.asarray(a).tolist())
    set_b = set(np.asarray(b).tolist())
    if not set_a and not set_b:
        return 1.0
    union = len(set_a | set_b)
    if union == 0:
        return 1.0
    return len(set_a & set_b) / union


def multiset_jaccard(a: np.ndarray, b: np.ndarray) -> float:
    """Multiset Jaccard: each occurrence of a token counts separately.

    For ``(A, A, A, B, B)`` vs ``(A, B, B, C)`` the intersection is
    ``{A1, B1, B2}`` (size 3) and the union has size 7, giving ``3/7``
    — the worked example of Section 3.1.
    """
    count_a = Counter(np.asarray(a).tolist())
    count_b = Counter(np.asarray(b).tolist())
    if not count_a and not count_b:
        return 1.0
    intersection = sum((count_a & count_b).values())
    union = sum((count_a | count_b).values())
    if union == 0:
        return 1.0
    return intersection / union


def estimate_jaccard(sketch_a: np.ndarray, sketch_b: np.ndarray) -> float:
    """Min-hash estimate of distinct Jaccard: collision fraction s / k."""
    sketch_a = np.asarray(sketch_a)
    sketch_b = np.asarray(sketch_b)
    if sketch_a.shape != sketch_b.shape:
        raise ValueError("sketches must have identical shapes")
    return float(np.count_nonzero(sketch_a == sketch_b)) / sketch_a.size


@dataclass(frozen=True)
class Span:
    """A reported near-duplicate sequence ``text[start..end]`` (inclusive)."""

    text_id: int
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start + 1


def merge_overlapping_spans(spans: Iterable[Span]) -> list[Span]:
    """Merge overlapping/adjacent spans per text into disjoint spans.

    Implements the remark of Section 3.5: rather than enumerating every
    redundant near-duplicate sequence, report disjoint merged regions.
    Spans from different texts never merge.  Output is sorted by
    ``(text_id, start)``.
    """
    by_text: dict[int, list[Span]] = {}
    for span in spans:
        by_text.setdefault(span.text_id, []).append(span)
    merged: list[Span] = []
    for text_id in sorted(by_text):
        ordered = sorted(by_text[text_id], key=lambda s: (s.start, s.end))
        current_start, current_end = ordered[0].start, ordered[0].end
        for span in ordered[1:]:
            if span.start <= current_end + 1:
                current_end = max(current_end, span.end)
            else:
                merged.append(Span(text_id, current_start, current_end))
                current_start, current_end = span.start, span.end
        merged.append(Span(text_id, current_start, current_end))
    return merged


def verify_spans(
    query: np.ndarray,
    text_tokens: Sequence[np.ndarray],
    spans: Iterable[Span],
    theta: float,
    similarity: str = "distinct",
) -> list[Span]:
    """Keep only spans whose *exact* Jaccard with the query is ``>= theta``.

    ``text_tokens`` maps text id to its token array (any indexable).
    This is an optional post-filter: Definition 2's output is defined by
    collision counts, but downstream users evaluating memorization may
    want the exact-similarity subset.
    """
    measure = distinct_jaccard if similarity == "distinct" else multiset_jaccard
    kept = []
    for span in spans:
        tokens = np.asarray(text_tokens[span.text_id])[span.start : span.end + 1]
        if measure(query, tokens) >= theta:
            kept.append(span)
    return kept
