"""Closed-form results from the paper's analysis (Section 3).

These functions back the theory-validation benchmark and the property
tests: measured quantities are compared against the expectations proved
in the paper.
"""

from __future__ import annotations

import math

from repro.exceptions import InvalidParameterError

#: Bytes per stored compact window: ``(text_id, l, c, r)`` as 4-byte ints.
BYTES_PER_WINDOW = 16

#: Bytes per corpus token (tokens are stored as 4-byte integers).
BYTES_PER_TOKEN = 4


def expected_window_count(n: int, t: int) -> float:
    """Expected number of valid compact windows for ``n`` distinct tokens.

    Theorem 1: ``S_n = 2 (n + 1) / (t + 1) - 1`` for ``n >= t``; the
    base cases are ``S_0 = ... = S_{t-1} = 0``.

    The formula is exact when all token hash values are distinct (which
    holds almost surely for distinct tokens under a random hash
    function).
    """
    if t < 1:
        raise InvalidParameterError(f"t must be >= 1, got {t}")
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    if n < t:
        return 0.0
    return 2.0 * (n + 1) / (t + 1) - 1.0


def expected_corpus_window_count(total_tokens: int, num_texts: int, t: int, k: int) -> float:
    """Expected window count over a corpus: per-text formula summed, times ``k``."""
    if num_texts <= 0:
        raise InvalidParameterError(f"num_texts must be positive, got {num_texts}")
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    avg_len = total_tokens / num_texts
    return k * num_texts * expected_window_count(int(avg_len), t)


def index_size_ratio_bound(t: int) -> float:
    """Paper's bound on (single-index size) / (corpus size): ``8 / t``.

    Each inverted index holds at most ``2 N / t`` windows on average for
    a corpus with ``N`` tokens, each window stored as four 4-byte
    integers, while the corpus occupies ``4 N`` bytes — hence the ratio
    ``(2 N / t) * 16 / (4 N) = 8 / t``.
    """
    if t < 1:
        raise InvalidParameterError(f"t must be >= 1, got {t}")
    return 8.0 / t


def estimator_variance_bound(k: int) -> float:
    """Upper bound on the variance of the min-hash Jaccard estimator.

    The estimator is a scaled Binomial(``k``, ``J``) variable, so its
    variance is ``J (1 - J) / k <= 1 / (4 k)``.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    return 1.0 / (4.0 * k)


def collision_threshold(k: int, theta: float) -> int:
    """The paper's collision threshold ``beta = ceil(k * theta)``."""
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if not 0.0 < theta <= 1.0:
        raise InvalidParameterError(f"theta must be in (0, 1], got {theta}")
    return math.ceil(k * theta)


def recall_estimate(k: int, theta: float, jaccard: float) -> float:
    """Probability that a sequence with the given Jaccard is reported.

    The collision count is Binomial(``k``, ``jaccard``); the sequence
    is reported when the count reaches ``ceil(k * theta)``.  Useful for
    choosing ``k``: the paper argues a large enough ``k`` finds "most"
    truly similar sequences.
    """
    if not 0.0 <= jaccard <= 1.0:
        raise InvalidParameterError(f"jaccard must be in [0, 1], got {jaccard}")
    beta = collision_threshold(k, theta)
    prob = 0.0
    for successes in range(beta, k + 1):
        prob += (
            math.comb(k, successes)
            * jaccard**successes
            * (1.0 - jaccard) ** (k - successes)
        )
    return prob
