"""Near-duplicate sequence search (paper Section 3.5, Algorithm 3).

Given a query sequence ``Q`` and a similarity threshold ``theta``, the
searcher:

1. computes the ``k``-mins sketch of ``Q``;
2. splits the ``k`` corresponding inverted lists into *short* and
   *long* ones (prefix filtering — long lists are the Zipf-head token
   lists that would dominate I/O);
3. loads the short lists, groups their compact windows by text, and
   runs :func:`~repro.core.intervals.collision_count` with the reduced
   threshold ``beta - (k - p)`` (``p`` = number of short lists): a text
   that cannot reach ``beta`` even if *every* long list contained it is
   pruned without touching the long lists;
4. for each surviving candidate text, point-reads its windows from the
   long lists through their zone maps and re-runs ``collision_count``
   with the full threshold ``beta = ceil(k * theta)``;
5. reports all sequences of length ``>= t`` contained in ``>= beta``
   colliding windows — Definition 2's output, sound and complete
   (Theorem 2).
"""

from __future__ import annotations

import dataclasses
import logging
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.hashing import HashFamily
from repro.core.intervals import (
    CollisionRectangle,
    FusedRectangles,
    collision_count,
    fused_collision_count,
)
from repro.core.theory import collision_threshold
from repro.core.verify import Span, merge_overlapping_spans
from repro.exceptions import InvalidParameterError, QueryError
from repro.index.inverted import InvertedIndexReader, POSTING_DTYPE

logger = logging.getLogger(__name__)

#: Group-scan kernels a searcher can run (``reference`` is the scalar
#: per-group sweep kept as the equivalence oracle and benchmark
#: baseline; ``fused`` is the vectorized default).
SEARCH_KERNELS = ("fused", "reference")


@dataclass
class QueryStats:
    """Per-query accounting mirroring the paper's latency breakdown."""

    total_seconds: float = 0.0
    io_seconds: float = 0.0
    io_bytes: int = 0
    io_calls: int = 0
    lists_loaded: int = 0
    long_lists: int = 0
    groups_scanned: int = 0
    candidates: int = 0
    texts_matched: int = 0
    #: Long-list point-read *operations* issued to the reader (batched
    #: grouped reads count once per list; the reference path counts one
    #: per surviving candidate per long list).  Complements
    #: ``lists_loaded``, which only sees full short-list loads.
    point_reads: int = 0

    @property
    def cpu_seconds(self) -> float:
        """Computation time: total minus I/O (the upper bars of Figure 3)."""
        return max(0.0, self.total_seconds - self.io_seconds)

    def merge(self, other: "QueryStats") -> None:
        """Fold ``other`` into this accumulator, field by field.

        Enumerates the dataclass fields so a counter added to
        ``QueryStats`` later is merged automatically — shard fan-out
        and batch accumulation both go through here, and a hand-written
        sum would silently drop new fields (as happened with
        ``point_reads``).
        """
        for spec in dataclasses.fields(self):
            setattr(
                self, spec.name, getattr(self, spec.name) + getattr(other, spec.name)
            )


@dataclass(frozen=True)
class TextMatch:
    """All qualifying sequences of one text, as disjoint rectangles."""

    text_id: int
    rectangles: tuple[CollisionRectangle, ...]

    def best_count(self) -> int:
        """Highest collision count among the rectangles."""
        return max(rect.count for rect in self.rectangles)

    def spans(self, min_length: int) -> list[Span]:
        """Every individual sequence of length ``>= min_length``."""
        return [
            Span(self.text_id, i, j)
            for rect in self.rectangles
            for (i, j) in rect.iter_spans(min_length)
        ]

    def widest_spans(self, min_length: int) -> list[Span]:
        """One longest sequence per rectangle (compact representation)."""
        spans = []
        for rect in self.rectangles:
            widest = rect.widest_span(min_length)
            if widest is not None:
                spans.append(Span(self.text_id, widest[0], widest[1]))
        return spans


@dataclass
class SearchResult:
    """Output of one near-duplicate search."""

    matches: list[TextMatch]
    stats: QueryStats
    k: int
    theta: float
    beta: int
    t: int

    @property
    def num_texts(self) -> int:
        return len(self.matches)

    def count_spans(self) -> int:
        """Total number of qualifying sequences (before merging)."""
        return sum(
            rect.span_count(self.t)
            for match in self.matches
            for rect in match.rectangles
        )

    def merged_spans(self) -> list[Span]:
        """Disjoint merged near-duplicate regions (Section 3.5 remark)."""
        widest = [
            span for match in self.matches for span in match.widest_spans(self.t)
        ]
        return merge_overlapping_spans(widest)

    def __bool__(self) -> bool:
        return bool(self.matches)


def derive_theta_result(base: SearchResult, theta: float) -> SearchResult:
    """Restrict a loose-threshold result to a stricter ``theta``.

    The collision-count rectangles carry *exact* counts, so a result
    computed at a loose threshold contains every stricter answer: keep
    the rectangles with ``count >= ceil(k * theta)``.  Used by
    :meth:`NearDuplicateSearcher.search_thetas` and the batch executor's
    multi-theta path; the derived result reuses the base query's stats
    (the index was touched once).
    """
    beta = collision_threshold(base.k, theta)
    matches = []
    for match in base.matches:
        kept = tuple(rect for rect in match.rectangles if rect.count >= beta)
        if kept:
            matches.append(TextMatch(match.text_id, kept))
    stats = QueryStats(
        total_seconds=base.stats.total_seconds,
        io_seconds=base.stats.io_seconds,
        io_bytes=base.stats.io_bytes,
        io_calls=base.stats.io_calls,
        lists_loaded=base.stats.lists_loaded,
        long_lists=base.stats.long_lists,
        groups_scanned=base.stats.groups_scanned,
        candidates=base.stats.candidates,
        texts_matched=len(matches),
        point_reads=base.stats.point_reads,
    )
    return SearchResult(
        matches=matches,
        stats=stats,
        k=base.k,
        theta=theta,
        beta=beta,
        t=base.t,
    )


def sketch_lengths(index, sketch: np.ndarray, k: int) -> np.ndarray:
    """The k query-list lengths, via the reader's batched lookup.

    Falls back to the per-function :meth:`list_length` loop for readers
    that do not implement ``sketch_list_lengths`` (third-party readers
    only need the minimal protocol).
    """
    batched = getattr(index, "sketch_list_lengths", None)
    if batched is not None:
        return np.asarray(batched(sketch), dtype=np.int64)
    return np.array(
        [index.list_length(func, int(sketch[func])) for func in range(k)],
        dtype=np.int64,
    )


def _load_texts_windows(
    index, func: int, minhash: int, text_ids: np.ndarray
) -> tuple[np.ndarray, int]:
    """Batched long-list point read with a scalar fallback.

    Returns ``(postings sorted by text, point-read operations issued)``
    — one operation for a reader with the grouped path, one per text
    for the fallback loop.
    """
    batched = getattr(index, "load_texts_windows", None)
    if batched is not None:
        return batched(func, minhash, text_ids), 1
    parts = [
        index.load_text_windows(func, minhash, int(text_id))
        for text_id in text_ids
    ]
    parts = [part for part in parts if part.size]
    if not parts:
        return np.empty(0, dtype=POSTING_DTYPE), int(len(text_ids))
    merged = parts[0] if len(parts) == 1 else np.concatenate(parts)
    return merged, int(len(text_ids))


class NearDuplicateSearcher:
    """Query processor over an inverted index of compact windows.

    Parameters
    ----------
    index:
        Any :class:`~repro.index.inverted.InvertedIndexReader` — the
        in-memory index or the on-disk one.
    long_list_cutoff:
        Prefix-filter cutoff: query lists longer than this many
        postings are "long" and only point-read for surviving
        candidates.  ``None`` enables a per-query heuristic (8x the
        median length of the query's own k lists); ``0`` disables
        prefix filtering.
    corpus:
        Optional corpus backing the index.  Required only for
        ``verify=True`` searches, which post-filter Definition 2's
        candidates by *exact* Jaccard — turning the approximate engine
        into an exact Definition 1 answer (on the candidates the
        sketching surfaced; recall remains probabilistic).
    kernel:
        Group-scan implementation: ``"fused"`` (default) runs the
        vectorized multi-group collision-count kernel with batched
        long-list point reads; ``"reference"`` runs the scalar
        per-group Algorithm 4/5 sweep (the equivalence oracle and the
        benchmark baseline).  Matches are identical either way.
    """

    def __init__(
        self,
        index: InvertedIndexReader,
        *,
        long_list_cutoff: int | None = None,
        corpus=None,
        kernel: str = "fused",
    ) -> None:
        self.index = index
        self.family: HashFamily = index.family
        self.t = index.t
        if long_list_cutoff is not None and long_list_cutoff < 0:
            raise InvalidParameterError("long_list_cutoff must be >= 0 or None")
        if kernel not in SEARCH_KERNELS:
            raise InvalidParameterError(
                f"kernel must be one of {SEARCH_KERNELS}, got {kernel!r}"
            )
        self.long_list_cutoff = long_list_cutoff
        self.kernel = kernel
        # A configured cutoff does not depend on the query; hoist it so
        # batch workloads don't re-derive it per query (the ``None``
        # heuristic stays per-query: it uses the query's own lengths).
        self._static_cutoff = (
            int(long_list_cutoff)
            if long_list_cutoff is not None and long_list_cutoff > 0
            else None
        )
        self.corpus = corpus

    # ------------------------------------------------------------------
    def search(
        self,
        query: np.ndarray,
        theta: float,
        *,
        first_match_only: bool = False,
        verify: bool = False,
    ) -> SearchResult:
        """Find all sequences colliding with ``query`` in ``>= beta`` trials.

        Parameters
        ----------
        query:
            Token-id sequence (non-empty).
        theta:
            Similarity threshold in ``(0, 1]``; the collision threshold
            is ``beta = ceil(k * theta)``.
        first_match_only:
            Stop at the first matching text.  The memorization
            evaluator only needs existence, and early exit mirrors how
            such an evaluation would be deployed.
        verify:
            Post-filter every candidate sequence by its *exact*
            distinct Jaccard against the query (requires the searcher
            to have been constructed with ``corpus=...``).  Matches
            whose rectangles lose all sequences are dropped.
        """
        query = np.asarray(query)
        if query.size == 0:
            raise QueryError("query sequence is empty")
        if verify and self.corpus is None:
            raise InvalidParameterError(
                "verify=True requires the searcher to be built with corpus=..."
            )
        begin_total = time.perf_counter()
        io = self.index.io_stats
        io_bytes0, io_calls0, io_seconds0 = io.bytes_read, io.read_calls, io.seconds
        stats = QueryStats()

        k = self.family.k
        beta = collision_threshold(k, theta)
        sketch = self.family.sketch(query)

        lengths = sketch_lengths(self.index, sketch, k)
        long_funcs = self._select_long_lists(lengths, beta)
        stats.long_lists = len(long_funcs)
        alpha_short = beta - len(long_funcs)

        # Load the short lists and tag each posting with a group key so
        # windows of one text from all short lists can be scanned together.
        short_chunks: list[np.ndarray] = []
        for func in range(k):
            if func in long_funcs or lengths[func] == 0:
                continue
            postings = self.index.load_list(func, int(sketch[func]))
            stats.lists_loaded += 1
            if postings.size:
                short_chunks.append(postings)

        matches: list[TextMatch] = []
        if short_chunks:
            scan = (
                self._scan_fused
                if self.kernel == "fused"
                else self._scan_reference
            )
            matches = scan(
                short_chunks,
                alpha_short,
                beta,
                sketch,
                long_funcs,
                stats,
                query,
                theta,
                first_match_only,
                verify,
            )

        stats.total_seconds = time.perf_counter() - begin_total
        stats.io_bytes = io.bytes_read - io_bytes0
        stats.io_calls = io.read_calls - io_calls0
        stats.io_seconds = io.seconds - io_seconds0
        stats.texts_matched = len(matches)
        logger.debug(
            "query theta=%.2f beta=%d: %d matches, %d candidates, "
            "%d long lists, %.1fms (%d bytes io)",
            theta,
            beta,
            len(matches),
            stats.candidates,
            stats.long_lists,
            1e3 * stats.total_seconds,
            stats.io_bytes,
        )
        return SearchResult(
            matches=matches,
            stats=stats,
            k=k,
            theta=theta,
            beta=beta,
            t=self.t,
        )

    # ------------------------------------------------------------------
    def _scan_reference(
        self,
        short_chunks: list[np.ndarray],
        alpha_short: int,
        beta: int,
        sketch: np.ndarray,
        long_funcs: set[int],
        stats: QueryStats,
        query: np.ndarray,
        theta: float,
        first_match_only: bool,
        verify: bool,
    ) -> list[TextMatch]:
        """The scalar per-group sweep (oracle / benchmark baseline)."""
        merged = np.concatenate(short_chunks)
        order = np.argsort(merged["text"], kind="stable")
        merged = merged[order]
        text_ids = merged["text"]
        boundaries = np.flatnonzero(
            np.concatenate(([True], text_ids[1:] != text_ids[:-1]))
        )
        boundaries = np.append(boundaries, merged.size)
        matches: list[TextMatch] = []
        for start, end in zip(boundaries[:-1], boundaries[1:]):
            group = merged[start:end]
            stats.groups_scanned += 1
            if group.size < alpha_short:
                continue
            rectangles = collision_count(group, max(alpha_short, 1))
            if not rectangles:
                continue
            stats.candidates += 1
            text_id = int(group["text"][0])
            if long_funcs:
                extra = [group]
                for func in sorted(long_funcs):
                    fetched = self.index.load_text_windows(
                        func, int(sketch[func]), text_id
                    )
                    stats.point_reads += 1
                    if fetched.size:
                        extra.append(fetched)
                combined = np.concatenate(extra)
                rectangles = collision_count(combined, beta)
            rectangles = [
                rect
                for rect in rectangles
                if rect.clip_min_length(self.t) is not None
            ]
            if rectangles and verify:
                rectangles = self._verify_rectangles(
                    query, theta, text_id, rectangles
                )
            if rectangles:
                matches.append(TextMatch(text_id, tuple(rectangles)))
                if first_match_only:
                    break
        return matches

    # ------------------------------------------------------------------
    def _scan_fused(
        self,
        short_chunks: list[np.ndarray],
        alpha_short: int,
        beta: int,
        sketch: np.ndarray,
        long_funcs: set[int],
        stats: QueryStats,
        query: np.ndarray,
        theta: float,
        first_match_only: bool,
        verify: bool,
    ) -> list[TextMatch]:
        """Vectorized group scan: one fused kernel pass over all groups.

        Produces exactly the matches (and ordering) of
        :meth:`_scan_reference`: the short postings are sorted once by
        ``(text, left)``, groups below the reduced threshold are pruned
        with a single mask, and the Algorithm 4/5 double sweep runs as
        flat event arrays over every surviving group at once.  Long-list
        refinement then gathers *all* surviving candidates and issues
        one grouped zone-map read per long list instead of one point
        read per candidate per list.
        """
        merged = np.concatenate(short_chunks)
        order = np.lexsort((merged["left"], merged["text"]))
        merged = merged[order]
        text_ids = merged["text"]
        starts = np.flatnonzero(
            np.concatenate(([True], text_ids[1:] != text_ids[:-1]))
        )
        sizes = np.diff(np.append(starts, merged.size))
        num_groups = int(sizes.size)
        alpha_eff = max(alpha_short, 1)
        keep = sizes >= alpha_short
        kept_sizes = sizes[keep]
        if kept_sizes.size == 0:
            stats.groups_scanned += num_groups
            return []
        kept = merged[np.repeat(keep, sizes)]
        group_texts = text_ids[starts[keep]].astype(np.int64)
        group_ids = np.repeat(
            np.arange(kept_sizes.size, dtype=np.int64), kept_sizes
        )
        rect = fused_collision_count(
            kept["left"], kept["center"], kept["right"], group_ids, alpha_eff
        )
        cand_groups = np.unique(rect.group)

        if first_match_only:
            return self._emit_first_match(
                rect,
                cand_groups,
                kept,
                kept_sizes,
                group_texts,
                np.flatnonzero(keep),
                num_groups,
                beta,
                sketch,
                long_funcs,
                stats,
                query,
                theta,
                verify,
            )

        stats.groups_scanned += num_groups
        stats.candidates += int(cand_groups.size)
        if cand_groups.size == 0:
            return []

        if long_funcs:
            # Batched long-list refinement: one grouped point read per
            # long list covering every surviving candidate, then one
            # fused pass at the full threshold beta.
            cand_texts = group_texts[cand_groups]
            is_candidate = np.zeros(kept_sizes.size, dtype=bool)
            is_candidate[cand_groups] = True
            parts = [kept[np.repeat(is_candidate, kept_sizes)]]
            for func in sorted(long_funcs):
                fetched, operations = _load_texts_windows(
                    self.index, func, int(sketch[func]), cand_texts
                )
                stats.point_reads += operations
                if fetched.size:
                    parts.append(fetched)
            combined = np.concatenate(parts)
            corder = np.lexsort((combined["left"], combined["text"]))
            combined = combined[corder]
            ctexts = combined["text"]
            cstarts = np.flatnonzero(
                np.concatenate(([True], ctexts[1:] != ctexts[:-1]))
            )
            csizes = np.diff(np.append(cstarts, combined.size))
            cgroup_ids = np.repeat(
                np.arange(csizes.size, dtype=np.int64), csizes
            )
            rect = fused_collision_count(
                combined["left"],
                combined["center"],
                combined["right"],
                cgroup_ids,
                beta,
            )
            group_texts = ctexts[cstarts].astype(np.int64)

        rect = rect.filtered(rect.j_hi - rect.i_lo + 1 >= self.t)
        matches: list[TextMatch] = []
        for group in np.unique(rect.group).tolist():
            lo, hi = rect.group_slice(group)
            rectangles = rect.rectangles(lo, hi)
            text_id = int(group_texts[group])
            if verify:
                rectangles = self._verify_rectangles(
                    query, theta, text_id, rectangles
                )
            if rectangles:
                matches.append(TextMatch(text_id, tuple(rectangles)))
        return matches

    # ------------------------------------------------------------------
    def _emit_first_match(
        self,
        rect: FusedRectangles,
        cand_groups: np.ndarray,
        kept: np.ndarray,
        kept_sizes: np.ndarray,
        group_texts: np.ndarray,
        kept_positions: np.ndarray,
        num_groups: int,
        beta: int,
        sketch: np.ndarray,
        long_funcs: set[int],
        stats: QueryStats,
        query: np.ndarray,
        theta: float,
        verify: bool,
    ) -> list[TextMatch]:
        """First-match mode over fused pass-A rectangles.

        Candidates are visited in ascending text order with *lazy*
        per-candidate long-list reads, so the early exit reads exactly
        as much as the reference loop would; the stats counters mirror
        the reference loop's stop point (groups and candidates beyond
        the first match stay uncounted, as if never visited).
        """
        group_bounds = np.concatenate(
            ([0], np.cumsum(kept_sizes))
        ).astype(np.int64)
        for visited, group in enumerate(cand_groups.tolist()):
            text_id = int(group_texts[group])
            lo, hi = rect.group_slice(group)
            rectangles = rect.rectangles(lo, hi)
            if long_funcs:
                extra = [kept[group_bounds[group] : group_bounds[group + 1]]]
                wanted = np.array([text_id], dtype=np.int64)
                for func in sorted(long_funcs):
                    fetched, operations = _load_texts_windows(
                        self.index, func, int(sketch[func]), wanted
                    )
                    stats.point_reads += operations
                    if fetched.size:
                        extra.append(fetched)
                combined = np.concatenate(extra)
                combined = combined[np.argsort(combined["left"], kind="stable")]
                refined = fused_collision_count(
                    combined["left"],
                    combined["center"],
                    combined["right"],
                    np.zeros(combined.size, dtype=np.int64),
                    beta,
                )
                rectangles = refined.rectangles()
            rectangles = [
                r for r in rectangles if r.clip_min_length(self.t) is not None
            ]
            if rectangles and verify:
                rectangles = self._verify_rectangles(
                    query, theta, text_id, rectangles
                )
            if rectangles:
                stats.groups_scanned += int(kept_positions[group]) + 1
                stats.candidates += visited + 1
                return [TextMatch(text_id, tuple(rectangles))]
        stats.groups_scanned += num_groups
        stats.candidates += int(cand_groups.size)
        return []

    # ------------------------------------------------------------------
    def search_thetas(
        self, query: np.ndarray, thetas: list[float]
    ) -> dict[float, SearchResult]:
        """Answer one query at several thresholds with a single index pass.

        The collision-count rectangles carry *exact* counts, so a run
        at the loosest threshold ``min(thetas)`` already contains every
        stricter answer: the result for a larger ``theta`` is simply
        the rectangles with ``count >= ceil(k * theta)``.  Memorization
        sweeps (Figure 4's theta axis) become one pass instead of one
        per theta.
        """
        if not thetas:
            raise InvalidParameterError("at least one theta is required")
        base = self.search(query, min(thetas))
        return {theta: derive_theta_result(base, theta) for theta in thetas}

    # ------------------------------------------------------------------
    def _verify_rectangles(
        self,
        query: np.ndarray,
        theta: float,
        text_id: int,
        rectangles: list[CollisionRectangle],
    ) -> list[CollisionRectangle]:
        """Exact-Jaccard filter: shrink each rectangle to the verified pairs.

        A rectangle is kept iff at least one of its sequences passes;
        kept rectangles are narrowed to the bounding box of the passing
        ``(i, j)`` pairs (pairs inside that box that failed remain
        excluded from :meth:`TextMatch.spans` only when callers
        re-verify, so :meth:`SearchResult.merged_spans` stays a sound
        over-approximation — the common deployment merges regions
        anyway).
        """
        from repro.core.verify import distinct_jaccard

        text = np.asarray(self.corpus[text_id])
        verified: list[CollisionRectangle] = []
        for rect in rectangles:
            passing = [
                (i, j)
                for (i, j) in rect.iter_spans(self.t)
                if distinct_jaccard(query, text[i : j + 1]) >= theta
            ]
            if not passing:
                continue
            i_values = [i for i, _ in passing]
            j_values = [j for _, j in passing]
            verified.append(
                CollisionRectangle(
                    i_lo=min(i_values),
                    i_hi=max(i_values),
                    j_lo=min(j_values),
                    j_hi=max(j_values),
                    count=rect.count,
                )
            )
        return verified

    # ------------------------------------------------------------------
    def search_many(
        self,
        queries: list[np.ndarray],
        theta: float,
        *,
        first_match_only: bool = False,
        verify: bool = False,
        workers: int = 0,
        batch_size: int | None = None,
    ) -> list[SearchResult]:
        """Answer a batch of queries through the batch executor.

        Matches and parameters are identical to calling :meth:`search`
        per query — batching is a pure execution strategy.  With
        ``workers=0`` this *is* the sequential per-query loop; with
        ``workers >= 1`` the batch is planned (duplicate sketches
        deduplicated, distinct inverted lists pinned once) and, for
        ``workers >= 2``, sharded across threads (in-memory index) or
        processes (on-disk index).  Callers that want the aggregated
        :class:`~repro.query.results.BatchStats` should use
        :class:`~repro.query.executor.BatchQueryExecutor` directly.
        """
        from repro.query.executor import BatchQueryExecutor

        with BatchQueryExecutor(
            self, workers=workers, batch_size=batch_size
        ) as executor:
            return executor.execute(
                queries, theta, first_match_only=first_match_only, verify=verify
            ).results

    def _effective_cutoff(self, lengths: np.ndarray) -> int | None:
        """The long-list cutoff for one query, or ``None`` when disabled.

        For a configured cutoff this is the hoisted constant; only the
        default heuristic (8x the median of the query's own non-empty
        list lengths) depends on the query.
        """
        if self.long_list_cutoff == 0:
            return None
        if self._static_cutoff is not None:
            return self._static_cutoff
        positive = lengths[lengths > 0]
        if positive.size == 0:
            return None
        return max(64, 8 * int(np.median(positive)))

    def _select_long_lists(self, lengths: np.ndarray, beta: int) -> set[int]:
        """Pick which of the query's ``k`` lists to prefix-filter away.

        Correctness cap: with ``k - p`` long lists, the short-list
        collision threshold is ``beta - (k - p)``; it must stay ``>= 1``
        (a candidate must collide at least once among the short lists),
        so at most ``beta - 1`` lists may be long.  The longest lists
        are preferred.
        """
        cutoff = self._effective_cutoff(lengths)
        if cutoff is None:
            return set()
        candidates = np.flatnonzero(lengths > cutoff)
        max_long = max(0, beta - 1)
        if candidates.size > max_long:
            order = np.argsort(-lengths[candidates], kind="stable")
            candidates = candidates[order[:max_long]]
        return {int(func) for func in candidates}
