"""Core algorithms of the paper: hashing, compact windows, search.

The public surface re-exported here is the paper's primary
contribution: min-hash families (:class:`HashFamily`), valid
compact-window generation (Algorithm 2), interval-based collision
counting (Algorithms 4–5), the query processor (Algorithm 3) and the
closed-form analysis of Section 3.
"""

from repro.core.compact_windows import (
    CompactWindow,
    WINDOW_DTYPE,
    generate_compact_windows,
    generate_compact_windows_kwide,
    generate_compact_windows_recursive,
    generate_compact_windows_stack,
)
from repro.core.hashing import HashFamily
from repro.core.intervals import (
    CollisionRectangle,
    FusedRectangles,
    ScanResult,
    collision_count,
    fused_collision_count,
    interval_scan,
)
from repro.core.multiset import (
    MultisetVerifier,
    estimate_multiset_jaccard,
    expand_multiset,
    multiset_sketch,
    search_definition2_multiset,
)
from repro.core.rmq import (
    BlockRMQ,
    RMQ_BACKENDS,
    SegmentTreeRMQ,
    SparseTableRMQ,
    make_rmq,
)
from repro.core.search import (
    NearDuplicateSearcher,
    QueryStats,
    SEARCH_KERNELS,
    SearchResult,
    TextMatch,
)
from repro.core.theory import (
    collision_threshold,
    estimator_variance_bound,
    expected_window_count,
    index_size_ratio_bound,
    recall_estimate,
)
from repro.core.verify import (
    Span,
    distinct_jaccard,
    estimate_jaccard,
    merge_overlapping_spans,
    multiset_jaccard,
    verify_spans,
)

__all__ = [
    "BlockRMQ",
    "CollisionRectangle",
    "CompactWindow",
    "FusedRectangles",
    "HashFamily",
    "MultisetVerifier",
    "NearDuplicateSearcher",
    "QueryStats",
    "RMQ_BACKENDS",
    "SEARCH_KERNELS",
    "ScanResult",
    "SearchResult",
    "SegmentTreeRMQ",
    "Span",
    "SparseTableRMQ",
    "TextMatch",
    "WINDOW_DTYPE",
    "collision_count",
    "collision_threshold",
    "distinct_jaccard",
    "estimate_jaccard",
    "estimate_multiset_jaccard",
    "estimator_variance_bound",
    "expand_multiset",
    "expected_window_count",
    "fused_collision_count",
    "generate_compact_windows",
    "generate_compact_windows_kwide",
    "generate_compact_windows_recursive",
    "generate_compact_windows_stack",
    "index_size_ratio_bound",
    "interval_scan",
    "make_rmq",
    "merge_overlapping_spans",
    "multiset_jaccard",
    "multiset_sketch",
    "recall_estimate",
    "search_definition2_multiset",
    "verify_spans",
]
