"""Multiset (bag) Jaccard support.

Section 3.1 defines two similarity variants; the engine targets the
*distinct* Jaccard (as the paper does: "we use the distinct Jaccard
similarity if not mentioned otherwise").  The multiset variant treats
each occurrence of a token as a distinct element: the bag ``{A, A, B}``
expands to ``{(A,1), (A,2), (B,1)}``.  This module provides

* :func:`expand_multiset` — the occurrence-rank expansion;
* :func:`multiset_sketch` — the k-mins sketch over expanded elements,
  an unbiased estimator of multiset Jaccard;
* :func:`search_definition2_multiset` — a Definition 2 oracle under
  multiset semantics, with the same incremental-sketch trick as the
  distinct oracle (appending a token adds exactly one new element);
* :class:`MultisetVerifier` — re-ranks/filters the distinct-Jaccard
  engine's output by exact multiset similarity, which is how a
  deployment wanting bag semantics composes with the compact-window
  index (index-side multiset windows are ALIGN's separate contribution
  and out of scope here; see DESIGN.md).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.hashing import HASH_BITS, HashFamily, _finalize
from repro.core.theory import collision_threshold
from repro.core.verify import Span, multiset_jaccard
from repro.corpus.corpus import Corpus
from repro.exceptions import InvalidParameterError


def expand_multiset(tokens: np.ndarray) -> np.ndarray:
    """Expand a token sequence into (token, occurrence-rank) element codes.

    The ``r``-th occurrence of token ``w`` (in sequence order) becomes
    the 64-bit code ``(w << 32) | r`` with ``r`` starting at 0.  Two
    sequences that are equal *as bags* expand to equal element sets, no
    matter how the occurrences are ordered.
    """
    tokens = np.asarray(tokens)
    counts: Counter[int] = Counter()
    codes = np.empty(tokens.size, dtype=np.uint64)
    for pos, token in enumerate(tokens.tolist()):
        rank = counts[token]
        counts[token] += 1
        codes[pos] = (np.uint64(token) << np.uint64(32)) | np.uint64(rank)
    return codes


def _hash_codes(family: HashFamily, codes: np.ndarray) -> np.ndarray:
    """Hash 64-bit element codes under every function of ``family``.

    Reuses the family's keyed multiply + splitmix64 finalizer so the
    multiset sketch inherits the same independence structure as the
    token sketch.
    """
    with np.errstate(over="ignore"):
        mixed = codes[None, :] * family._a[:, None] + family._b[:, None]
    return (_finalize(mixed) >> np.uint64(64 - HASH_BITS)).astype(np.uint32)


def multiset_sketch(family: HashFamily, tokens: np.ndarray) -> np.ndarray:
    """k-mins sketch of a sequence under multiset semantics."""
    tokens = np.asarray(tokens)
    if tokens.size == 0:
        raise InvalidParameterError("cannot sketch an empty sequence")
    codes = expand_multiset(tokens)
    return _hash_codes(family, codes).min(axis=1)


def estimate_multiset_jaccard(
    family: HashFamily, a: np.ndarray, b: np.ndarray
) -> float:
    """Min-hash estimate of the multiset Jaccard of two sequences."""
    sketch_a = multiset_sketch(family, a)
    sketch_b = multiset_sketch(family, b)
    return float(np.count_nonzero(sketch_a == sketch_b)) / family.k


def search_definition2_multiset(
    corpus: Corpus,
    query: np.ndarray,
    theta: float,
    t: int,
    family: HashFamily,
) -> list[Span]:
    """Definition 2 under multiset semantics, by enumeration.

    Extending a span by one token adds exactly one element (the new
    occurrence's rank is its count so far within the span), so the
    running sketch updates with one vectorized ``minimum`` per ``j`` —
    quadratic overall, usable at oracle scale.
    """
    if not 0.0 < theta <= 1.0:
        raise InvalidParameterError(f"theta must be in (0, 1], got {theta}")
    if t < 1:
        raise InvalidParameterError(f"t must be >= 1, got {t}")
    query = np.asarray(query)
    beta = collision_threshold(family.k, theta)
    query_sketch = multiset_sketch(family, query)
    results: list[Span] = []
    for text_id in range(len(corpus)):
        text = np.asarray(corpus[text_id])
        tokens = text.tolist()
        n = text.size
        for i in range(n):
            if i + t - 1 >= n:
                break
            counts: Counter[int] = Counter()
            sketch = np.full(family.k, np.iinfo(np.uint32).max, dtype=np.uint32)
            for j in range(i, n):
                token = tokens[j]
                rank = counts[token]
                counts[token] += 1
                code = np.array(
                    [(np.uint64(token) << np.uint64(32)) | np.uint64(rank)],
                    dtype=np.uint64,
                )
                element_hashes = _hash_codes(family, code)[:, 0]
                np.minimum(sketch, element_hashes, out=sketch)
                if j - i + 1 < t:
                    continue
                if int(np.count_nonzero(sketch == query_sketch)) >= beta:
                    results.append(Span(text_id, i, j))
    return results


class MultisetVerifier:
    """Filter a distinct-Jaccard search result by exact multiset Jaccard.

    Distinct Jaccard upper-bounds how *sets* of tokens overlap; when
    bag semantics matter (duplicate-heavy text), run the fast indexed
    search at a relaxed distinct threshold and verify the merged spans
    exactly.
    """

    def __init__(self, corpus: Corpus) -> None:
        self._corpus = corpus

    def verify(
        self, query: np.ndarray, spans: list[Span], theta: float
    ) -> list[tuple[Span, float]]:
        """Return ``(span, multiset_jaccard)`` pairs meeting ``theta``."""
        if not 0.0 < theta <= 1.0:
            raise InvalidParameterError(f"theta must be in (0, 1], got {theta}")
        query = np.asarray(query)
        kept = []
        for span in spans:
            tokens = np.asarray(self._corpus[span.text_id])[
                span.start : span.end + 1
            ]
            similarity = multiset_jaccard(query, tokens)
            if similarity >= theta:
                kept.append((span, similarity))
        kept.sort(key=lambda pair: -pair[1])
        return kept
