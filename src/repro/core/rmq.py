"""Range-minimum query (RMQ) data structures.

Algorithm 2 of the paper repeatedly asks for the position of the
minimum token hash inside a sub-sequence.  ALIGN used a segment tree
(``O(log n)`` per query); the paper observes that constant-time RMQ
structures bring compact-window generation down to ``O(n)`` overall.

Three interchangeable structures are provided:

* :class:`SparseTableRMQ` — ``O(n log n)`` preprocessing, ``O(1)``
  query.  The default: at reproduction scale its preprocessing is a few
  vectorized numpy passes.
* :class:`SegmentTreeRMQ` — ``O(n)`` preprocessing, ``O(log n)`` query.
  ALIGN's choice; kept for the ablation benchmark.
* :class:`BlockRMQ` — ``O(n)`` preprocessing *and space*, ``O(block)``
  query.  A practical stand-in for the linear-space constant-time
  structure of Fischer & Heun cited by the paper: it decomposes the
  array into blocks, keeps a sparse table over block minima, and scans
  inside at most two blocks per query.

All structures answer ``argmin(values[lo..hi])`` over *inclusive* index
ranges and break ties by returning the **leftmost** minimum, which is
the tie-breaking rule the compact-window generator relies on.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.exceptions import InvalidParameterError


class RangeMinimumQuery(Protocol):
    """Protocol shared by all RMQ implementations."""

    def query(self, lo: int, hi: int) -> int:
        """Index of the leftmost minimum of ``values[lo..hi]`` (inclusive)."""
        ...


def _validate(values: np.ndarray) -> np.ndarray:
    array = np.asarray(values)
    if array.ndim != 1:
        raise InvalidParameterError("RMQ input must be one-dimensional")
    if array.size == 0:
        raise InvalidParameterError("RMQ input must be non-empty")
    return array


class SparseTableRMQ:
    """Sparse-table RMQ: ``O(n log n)`` build, ``O(1)`` leftmost-argmin query."""

    def __init__(self, values: np.ndarray) -> None:
        array = _validate(values)
        n = array.size
        self._values = array
        self._n = n
        levels = max(1, n.bit_length())
        # table[j] holds, for each i, the argmin of values[i : i + 2**j].
        table = np.empty((levels, n), dtype=np.int64)
        table[0] = np.arange(n)
        for j in range(1, levels):
            half = 1 << (j - 1)
            span = 1 << j
            width = n - span + 1
            if width <= 0:
                table[j] = table[j - 1]
                continue
            left = table[j - 1, :width]
            right = table[j - 1, half : half + width]
            # '<=' keeps the leftmost index on ties.
            take_left = array[left] <= array[right]
            table[j, :width] = np.where(take_left, left, right)
            table[j, width:] = table[j - 1, width:]
        self._table = table

    def query(self, lo: int, hi: int) -> int:
        if not 0 <= lo <= hi < self._n:
            raise InvalidParameterError(f"invalid RMQ range [{lo}, {hi}] for size {self._n}")
        span = hi - lo + 1
        j = span.bit_length() - 1
        left = int(self._table[j, lo])
        right = int(self._table[j, hi - (1 << j) + 1])
        if self._values[left] <= self._values[right]:
            return left
        # Ties between the two overlapping halves favour the leftmost
        # index, and `left` always starts no later than `right`.
        return right if self._values[right] < self._values[left] else left


class SegmentTreeRMQ:
    """Iterative segment tree RMQ: ``O(n)`` build, ``O(log n)`` query.

    This is the structure ALIGN used; the ablation benchmark contrasts
    it with the constant-time alternatives.
    """

    def __init__(self, values: np.ndarray) -> None:
        array = _validate(values)
        n = array.size
        self._values = array
        self._n = n
        size = 1
        while size < n:
            size *= 2
        self._size = size
        tree = np.full(2 * size, -1, dtype=np.int64)
        tree[size : size + n] = np.arange(n)
        for node in range(size - 1, 0, -1):
            tree[node] = self._better(tree[2 * node], tree[2 * node + 1])
        self._tree = tree

    def _better(self, i: int, j: int) -> int:
        """Leftmost-argmin combinator treating -1 as 'no candidate'."""
        if i < 0:
            return int(j)
        if j < 0:
            return int(i)
        vi, vj = self._values[i], self._values[j]
        if vi < vj or (vi == vj and i < j):
            return int(i)
        return int(j)

    def query(self, lo: int, hi: int) -> int:
        if not 0 <= lo <= hi < self._n:
            raise InvalidParameterError(f"invalid RMQ range [{lo}, {hi}] for size {self._n}")
        best = -1
        left = lo + self._size
        right = hi + self._size + 1
        while left < right:
            if left & 1:
                best = self._better(best, self._tree[left])
                left += 1
            if right & 1:
                right -= 1
                best = self._better(best, self._tree[right])
            left //= 2
            right //= 2
        return int(best)


class BlockRMQ:
    """Block-decomposition RMQ: linear space, small-constant queries.

    Splits the array into blocks of ``block_size`` (default
    ``max(16, log2(n))``), answers cross-block queries from a sparse
    table over per-block minima and scans the at most two boundary
    blocks directly.  With numpy ``argmin`` for the scans the constant
    is tiny, making this the practical counterpart of the linear-space
    structure referenced by the paper.
    """

    def __init__(self, values: np.ndarray, block_size: int | None = None) -> None:
        array = _validate(values)
        n = array.size
        self._values = array
        self._n = n
        if block_size is None:
            block_size = max(16, n.bit_length())
        if block_size <= 0:
            raise InvalidParameterError(f"block_size must be positive, got {block_size}")
        self._block = block_size
        num_blocks = (n + block_size - 1) // block_size
        block_argmins = np.empty(num_blocks, dtype=np.int64)
        for b in range(num_blocks):
            lo = b * block_size
            hi = min(n, lo + block_size)
            block_argmins[b] = lo + int(np.argmin(array[lo:hi]))
        self._block_argmins = block_argmins
        self._summary = SparseTableRMQ(array[block_argmins]) if num_blocks > 1 else None

    def query(self, lo: int, hi: int) -> int:
        if not 0 <= lo <= hi < self._n:
            raise InvalidParameterError(f"invalid RMQ range [{lo}, {hi}] for size {self._n}")
        array = self._values
        block = self._block
        b_lo, b_hi = lo // block, hi // block
        if b_lo == b_hi:
            return lo + int(np.argmin(array[lo : hi + 1]))
        candidates = [lo + int(np.argmin(array[lo : (b_lo + 1) * block]))]
        if b_lo + 1 <= b_hi - 1 and self._summary is not None:
            mid = self._summary.query(b_lo + 1, b_hi - 1)
            candidates.append(int(self._block_argmins[mid]))
        candidates.append(b_hi * block + int(np.argmin(array[b_hi * block : hi + 1])))
        best = candidates[0]
        for cand in candidates[1:]:
            if array[cand] < array[best] or (array[cand] == array[best] and cand < best):
                best = cand
        return best


#: Registry used by benchmarks and the CLI to select an RMQ backend.
RMQ_BACKENDS = {
    "sparse": SparseTableRMQ,
    "segment": SegmentTreeRMQ,
    "block": BlockRMQ,
}


def make_rmq(values: np.ndarray, backend: str = "sparse") -> RangeMinimumQuery:
    """Construct an RMQ structure over ``values`` by backend name."""
    try:
        factory = RMQ_BACKENDS[backend]
    except KeyError:
        raise InvalidParameterError(
            f"unknown RMQ backend {backend!r}; choose from {sorted(RMQ_BACKENDS)}"
        ) from None
    return factory(values)
