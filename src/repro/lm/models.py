"""Model zoo: named capacity tiers mirroring the paper's four models.

Section 5 evaluates GPT-2 small (117M) and medium (345M) on
OpenWebText-trained checkpoints and GPT-Neo 1.3B / 2.7B on Pile.  The
reproduction's tiers scale the n-gram capacity knobs instead; what the
experiments need is a *monotone capacity axis with seeded training*,
which these configs provide.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.corpus import Corpus
from repro.exceptions import InvalidParameterError
from repro.lm.ngram import NGramConfig, NGramLM

#: Named tiers, smallest to largest.  ``paper_analogue`` is documentation
#: only; nothing numerical is inferred from it.
MODEL_ZOO: dict[str, dict] = {
    "small": {
        "config": NGramConfig(order=3, prune_min_count=3, interpolation=0.85),
        "paper_analogue": "GPT-2 small (117M)",
    },
    "medium": {
        "config": NGramConfig(order=4, prune_min_count=2, interpolation=0.9),
        "paper_analogue": "GPT-2 medium (345M)",
    },
    "large": {
        "config": NGramConfig(order=5, prune_min_count=1, interpolation=0.93),
        "paper_analogue": "GPT-Neo 1.3B",
    },
    "xl": {
        "config": NGramConfig(order=6, prune_min_count=1, interpolation=0.96),
        "paper_analogue": "GPT-Neo 2.7B",
    },
}


@dataclass(frozen=True)
class TrainedModel:
    """A fitted model with its zoo metadata."""

    name: str
    model: NGramLM
    paper_analogue: str

    @property
    def num_parameters(self) -> int:
        return self.model.num_parameters


def train_model(
    name: str, corpus: Corpus, vocab_size: int | None = None
) -> TrainedModel:
    """Train one zoo tier on ``corpus``."""
    try:
        spec = MODEL_ZOO[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown model {name!r}; choose from {sorted(MODEL_ZOO)}"
        ) from None
    if vocab_size is None:
        vocab_size = max(
            (int(text.max()) + 1 for text in corpus if text.size), default=1
        )
    model = NGramLM(spec["config"], vocab_size).fit(corpus)
    return TrainedModel(name=name, model=model, paper_analogue=spec["paper_analogue"])


def train_zoo(
    corpus: Corpus, names: list[str] | None = None, vocab_size: int | None = None
) -> list[TrainedModel]:
    """Train several tiers on the same corpus (the Figure 4 setup)."""
    if names is None:
        names = list(MODEL_ZOO)
    return [train_model(name, corpus, vocab_size) for name in names]
