"""Text-generation strategies (paper Section 2, "Generation Strategies").

The paper enumerates the standard decoding strategies — random
sampling, greedy search, beam search, top-k sampling and top-p
(nucleus) sampling — and its memorization study (Section 5) generates
unprompted texts with top-50 sampling.  All five are implemented here
over any model exposing ``next_token_distribution``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.corpus import TOKEN_DTYPE
from repro.exceptions import InvalidParameterError
from repro.lm.ngram import NGramLM


@dataclass(frozen=True)
class GenerationConfig:
    """Decoding configuration.

    ``strategy`` is one of ``"random"``, ``"greedy"``, ``"top_k"``,
    ``"top_p"`` or ``"beam"``; the paper's Section 5 setting is
    ``top_k`` with ``k=50``.
    """

    strategy: str = "top_k"
    top_k: int = 50
    top_p: float = 0.95
    beam_width: int = 4

    def __post_init__(self) -> None:
        if self.strategy not in {"random", "greedy", "top_k", "top_p", "beam"}:
            raise InvalidParameterError(f"unknown strategy {self.strategy!r}")
        if self.top_k < 1:
            raise InvalidParameterError("top_k must be >= 1")
        if not 0.0 < self.top_p <= 1.0:
            raise InvalidParameterError("top_p must be in (0, 1]")
        if self.beam_width < 1:
            raise InvalidParameterError("beam_width must be >= 1")


def generate(
    model: NGramLM,
    length: int,
    *,
    config: GenerationConfig | None = None,
    prompt: np.ndarray | None = None,
    seed: int = 0,
) -> np.ndarray:
    """Generate ``length`` tokens, optionally continuing a ``prompt``.

    Returns only the newly generated tokens (the prompt is context but
    is not echoed), matching how the paper's unprompted evaluation
    treats generated text.
    """
    if length <= 0:
        raise InvalidParameterError(f"length must be positive, got {length}")
    if config is None:
        config = GenerationConfig()
    if config.strategy == "beam":
        return _beam_search(model, length, config.beam_width, prompt)
    rng = np.random.default_rng(seed)
    context: list[int] = [] if prompt is None else np.asarray(prompt).tolist()
    prompt_len = len(context)
    for _ in range(length):
        probs = model.next_token_distribution(context)
        context.append(_pick(probs, config, rng))
    return np.asarray(context[prompt_len:], dtype=TOKEN_DTYPE)


def _pick(probs: np.ndarray, config: GenerationConfig, rng: np.random.Generator) -> int:
    if config.strategy == "greedy":
        return int(np.argmax(probs))
    if config.strategy == "random":
        return int(rng.choice(probs.size, p=probs))
    if config.strategy == "top_k":
        k = min(config.top_k, probs.size)
        # Stable descending order: ties resolve to the smaller token id,
        # matching greedy's argmax (so top_k=1 == greedy exactly).
        top = np.argsort(-probs, kind="stable")[:k]
        weights = probs[top]
        total = weights.sum()
        if total <= 0:
            return int(np.argmax(probs))
        return int(rng.choice(top, p=weights / total))
    # top_p: smallest prefix of the sorted distribution reaching mass p.
    order = np.argsort(-probs, kind="stable")
    cumulative = np.cumsum(probs[order])
    keep = int(np.searchsorted(cumulative, config.top_p)) + 1
    chosen = order[:keep]
    weights = probs[chosen]
    return int(rng.choice(chosen, p=weights / weights.sum()))


def _beam_search(
    model: NGramLM, length: int, beam_width: int, prompt: np.ndarray | None
) -> np.ndarray:
    """Deterministic beam search decoding."""
    base: list[int] = [] if prompt is None else np.asarray(prompt).tolist()
    beams: list[tuple[float, list[int]]] = [(0.0, [])]
    for _ in range(length):
        expansions: list[tuple[float, list[int]]] = []
        for score, generated in beams:
            probs = model.next_token_distribution(base + generated)
            top = np.argsort(-probs, kind="stable")[:beam_width]
            for token in top:
                prob = float(probs[token])
                if prob <= 0:
                    continue
                expansions.append((score + float(np.log(prob)), generated + [int(token)]))
        if not expansions:
            break
        expansions.sort(key=lambda pair: pair[0], reverse=True)
        beams = expansions[:beam_width]
    return np.asarray(beams[0][1], dtype=TOKEN_DTYPE)
