"""Language-model quality evaluation.

Section 5's capacity axis (GPT-2 small -> GPT-Neo 2.7B) is meaningful
because bigger models are *better* models.  These helpers confirm the
reproduction's model-zoo tiers form a genuine quality axis — held-out
perplexity falls and generation diversity changes with capacity — so
the memorization trend of Figure 4 is attributable to capacity, not to
degenerate models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.corpus import Corpus
from repro.exceptions import InvalidParameterError
from repro.lm.ngram import NGramLM


@dataclass(frozen=True)
class LMEvalReport:
    """Quality summary of one model on held-out data."""

    model_name: str
    num_parameters: int
    heldout_perplexity: float
    train_perplexity: float
    distinct_2: float
    distinct_3: float

    @property
    def generalization_gap(self) -> float:
        """Held-out minus train perplexity (overfitting indicator)."""
        return self.heldout_perplexity - self.train_perplexity


def corpus_perplexity(
    model: NGramLM, corpus: Corpus, *, max_texts: int = 10, max_tokens: int = 200
) -> float:
    """Mean per-token perplexity over (a sample of) a corpus."""
    if max_texts < 1:
        raise InvalidParameterError("max_texts must be >= 1")
    log_probs = []
    token_count = 0
    for text_id in range(min(len(corpus), max_texts)):
        tokens = np.asarray(corpus[text_id])[:max_tokens]
        if tokens.size == 0:
            continue
        log_probs.append(model.sequence_log_prob(tokens))
        token_count += tokens.size
    if token_count == 0:
        raise InvalidParameterError("no tokens to evaluate")
    return float(np.exp(-sum(log_probs) / token_count))


def distinct_n(samples: list[np.ndarray], n: int) -> float:
    """Distinct-n diversity: unique n-grams / total n-grams across samples."""
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    seen: set[bytes] = set()
    total = 0
    for sample in samples:
        sample = np.ascontiguousarray(sample)
        for start in range(0, sample.size - n + 1):
            seen.add(sample[start : start + n].tobytes())
            total += 1
    return len(seen) / total if total else 0.0


def evaluate_lm(
    model: NGramLM,
    train_corpus: Corpus,
    heldout_corpus: Corpus,
    *,
    model_name: str = "model",
    samples: list[np.ndarray] | None = None,
    max_texts: int = 10,
) -> LMEvalReport:
    """Full quality report for one model."""
    if samples is None:
        from repro.lm.generation import GenerationConfig, generate

        config = GenerationConfig(strategy="top_k", top_k=50)
        samples = [generate(model, 128, config=config, seed=s) for s in range(4)]
    return LMEvalReport(
        model_name=model_name,
        num_parameters=model.num_parameters,
        heldout_perplexity=corpus_perplexity(model, heldout_corpus, max_texts=max_texts),
        train_perplexity=corpus_perplexity(model, train_corpus, max_texts=max_texts),
        distinct_2=distinct_n(samples, 2),
        distinct_3=distinct_n(samples, 3),
    )
