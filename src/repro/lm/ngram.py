"""N-gram language models standing in for GPT-2 / GPT-Neo.

The paper's Section 5 needs language models that (a) were trained on
the corpus under study and (b) regurgitate training sequences with a
propensity that grows with model capacity.  Transformer checkpoints are
out of scope for an offline reproduction; an interpolated backoff
n-gram model reproduces exactly the relevant behaviour:

* it learns ``p(x_i | x_{i-n+1} .. x_{i-1})`` from the corpus, the same
  objective LLMs optimize (Section 2);
* sampling from it emits verbatim and near-verbatim training spans,
  and the emission rate grows with the model order and with how many
  contexts it retains — our "capacity" knobs, mirroring the paper's
  117M/345M/1.3B/2.7B parameter sweep.

Capacity knobs:

``order``
    Context length + 1.  Higher order → sharper continuation
    distributions → more memorization.
``prune_min_count``
    Contexts seen fewer times are dropped, shrinking the "parameter
    count" and with it the memorization capacity.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.corpus.corpus import Corpus, TOKEN_DTYPE
from repro.exceptions import InvalidParameterError

#: Reserved id used internally to pad the first context positions.
_BOS = -1


@dataclass(frozen=True)
class NGramConfig:
    """Capacity and smoothing configuration of one model.

    ``smoothing`` selects between:

    * ``"interpolated"`` — fixed-weight linear interpolation of the
      context levels (weight ``interpolation`` per level);
    * ``"kneser_ney"`` — interpolated absolute discounting: each level
      subtracts ``discount`` from every count and redistributes the
      freed mass to the shorter context, the standard high-quality
      n-gram smoother.  The distribution sharpens where evidence is
      strong and backs off smoothly where it is not.
    """

    order: int
    prune_min_count: int = 1
    interpolation: float = 0.9
    smoothing: str = "interpolated"
    discount: float = 0.75

    def __post_init__(self) -> None:
        if self.order < 1:
            raise InvalidParameterError(f"order must be >= 1, got {self.order}")
        if self.prune_min_count < 1:
            raise InvalidParameterError("prune_min_count must be >= 1")
        if not 0.0 <= self.interpolation < 1.0:
            raise InvalidParameterError("interpolation must be in [0, 1)")
        if self.smoothing not in {"interpolated", "kneser_ney"}:
            raise InvalidParameterError(
                f"unknown smoothing {self.smoothing!r}; "
                "choose 'interpolated' or 'kneser_ney'"
            )
        if not 0.0 < self.discount < 1.0:
            raise InvalidParameterError("discount must be in (0, 1)")


class NGramLM:
    """Interpolated backoff n-gram model over integer token ids.

    Probability of the next token interpolates the highest-order
    context estimate with recursively lower orders, bottoming out at
    the unigram distribution; unseen events therefore always have
    non-zero probability and generation never gets stuck.
    """

    def __init__(self, config: NGramConfig, vocab_size: int) -> None:
        if vocab_size <= 0:
            raise InvalidParameterError(f"vocab_size must be positive, got {vocab_size}")
        self.config = config
        self.vocab_size = int(vocab_size)
        # counts[n] maps an n-token context tuple to a Counter of next tokens.
        self._counts: list[dict[tuple[int, ...], Counter[int]]] = [
            {} for _ in range(config.order)
        ]
        self._unigram = np.ones(vocab_size, dtype=np.float64)  # add-one prior
        self._trained_tokens = 0

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(self, corpus: Corpus) -> "NGramLM":
        """Count n-grams of every text, then prune rare contexts."""
        max_context = self.config.order - 1
        for text in corpus:
            tokens = np.asarray(text).tolist()
            self._trained_tokens += len(tokens)
            for pos, token in enumerate(tokens):
                self._unigram[token] += 1.0
                for ctx_len in range(1, max_context + 1):
                    if pos - ctx_len < 0:
                        break
                    context = tuple(tokens[pos - ctx_len : pos])
                    table = self._counts[ctx_len]
                    nxt = table.get(context)
                    if nxt is None:
                        nxt = Counter()
                        table[context] = nxt
                    nxt[token] += 1
        if self.config.prune_min_count > 1:
            self._prune()
        return self

    def _prune(self) -> None:
        """Drop contexts with total count below the capacity threshold."""
        floor = self.config.prune_min_count
        for ctx_len in range(1, self.config.order):
            table = self._counts[ctx_len]
            doomed = [
                context
                for context, nxt in table.items()
                if sum(nxt.values()) < floor
            ]
            for context in doomed:
                del table[context]

    # ------------------------------------------------------------------
    # Probability
    # ------------------------------------------------------------------
    def next_token_distribution(self, context: list[int]) -> np.ndarray:
        """``p(. | context)`` as a dense probability vector."""
        if self.config.smoothing == "kneser_ney":
            return self._kneser_ney_distribution(context)
        probs = self._unigram / self._unigram.sum()
        lam = self.config.interpolation
        max_context = self.config.order - 1
        usable = context[-max_context:] if max_context else []
        # Interpolate from short to long contexts so longer (sharper)
        # contexts dominate when available.
        for ctx_len in range(1, len(usable) + 1):
            key = tuple(usable[len(usable) - ctx_len :])
            nxt = self._counts[ctx_len].get(key)
            if not nxt:
                continue
            total = sum(nxt.values())
            level = np.zeros(self.vocab_size, dtype=np.float64)
            for token, count in nxt.items():
                level[token] = count / total
            probs = (1.0 - lam) * probs + lam * level
        return probs

    def _kneser_ney_distribution(self, context: list[int]) -> np.ndarray:
        """Interpolated absolute discounting (Kneser-Ney style).

        Recursively: ``p_c(w) = max(count - D, 0)/total +
        (D * distinct_continuations / total) * p_{shorter}(w)``, bottoming
        out at the (add-one-smoothed) unigram distribution.
        """
        discount = self.config.discount
        max_context = self.config.order - 1
        usable = context[-max_context:] if max_context else []
        probs = self._unigram / self._unigram.sum()
        # Build up from the shortest context to the longest, composing
        # the discount interpolation at each level.
        for ctx_len in range(1, len(usable) + 1):
            key = tuple(usable[len(usable) - ctx_len :])
            nxt = self._counts[ctx_len].get(key)
            if not nxt:
                continue
            total = sum(nxt.values())
            level = np.zeros(self.vocab_size, dtype=np.float64)
            for token, count in nxt.items():
                level[token] = max(count - discount, 0.0) / total
            backoff_mass = discount * len(nxt) / total
            probs = level + backoff_mass * probs
        # Numerical safety: the recursion preserves total mass exactly
        # in theory; renormalize to absorb floating-point drift.
        return probs / probs.sum()

    def sequence_log_prob(self, tokens: np.ndarray) -> float:
        """Log probability of a token sequence under the model."""
        tokens_list = np.asarray(tokens).tolist()
        total = 0.0
        for pos, token in enumerate(tokens_list):
            probs = self.next_token_distribution(tokens_list[:pos])
            total += float(np.log(max(probs[token], 1e-300)))
        return total

    def perplexity(self, tokens: np.ndarray) -> float:
        """Per-token perplexity of a sequence."""
        tokens = np.asarray(tokens)
        if tokens.size == 0:
            raise InvalidParameterError("cannot compute perplexity of empty sequence")
        return float(np.exp(-self.sequence_log_prob(tokens) / tokens.size))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        """Total stored (context, next-token) entries — the "model size"."""
        return sum(
            len(nxt) for table in self._counts for nxt in table.values()
        ) + self.vocab_size

    @property
    def trained_tokens(self) -> int:
        return self._trained_tokens

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NGramLM(order={self.config.order}, vocab={self.vocab_size}, "
            f"params={self.num_parameters})"
        )
