"""Language-model substrate: n-gram LMs, decoding strategies, model zoo."""

from repro.lm.evaluation import (
    LMEvalReport,
    corpus_perplexity,
    distinct_n,
    evaluate_lm,
)
from repro.lm.generation import GenerationConfig, generate
from repro.lm.models import MODEL_ZOO, TrainedModel, train_model, train_zoo
from repro.lm.ngram import NGramConfig, NGramLM

__all__ = [
    "GenerationConfig",
    "LMEvalReport",
    "MODEL_ZOO",
    "NGramConfig",
    "NGramLM",
    "TrainedModel",
    "corpus_perplexity",
    "distinct_n",
    "evaluate_lm",
    "generate",
    "train_model",
    "train_zoo",
]
