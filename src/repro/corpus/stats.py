"""Corpus statistics: token-frequency skew and duplication profile.

The paper's prefix filter exists because "the word/token frequency in
natural languages follows the Zipf law" (Section 3.5).  These helpers
quantify that premise on any corpus — the fitted Zipf exponent, head
concentration, and text-length profile — and are used by the
experiments to confirm the synthetic corpora actually exhibit the skew
the algorithm is designed around.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.corpus import Corpus
from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class TokenFrequencyProfile:
    """Token-frequency summary of a corpus."""

    vocab_size: int
    total_tokens: int
    distinct_tokens: int
    zipf_exponent: float
    top1_share: float
    top1pct_share: float

    @property
    def is_skewed(self) -> bool:
        """Rough Zipf-ness test: the head carries disproportionate mass."""
        return self.top1pct_share > 0.05 and self.zipf_exponent > 0.5


def token_frequencies(corpus: Corpus, vocab_size: int | None = None) -> np.ndarray:
    """Occurrence count per token id across the whole corpus."""
    if vocab_size is None:
        vocab_size = max(
            (int(text.max()) + 1 for text in corpus if text.size), default=0
        )
    counts = np.zeros(vocab_size, dtype=np.int64)
    for text in corpus:
        if text.size:
            counts += np.bincount(text, minlength=vocab_size)
    return counts


def fit_zipf_exponent(counts: np.ndarray, *, head: int | None = None) -> float:
    """Least-squares slope of log(frequency) vs log(rank).

    Fits the head of the distribution (default: ranks up to the number
    of tokens with count >= 2) where the Zipf regime lives; the tail of
    singletons flattens any corpus's log-log plot.
    """
    ordered = np.sort(np.asarray(counts, dtype=np.float64))[::-1]
    ordered = ordered[ordered > 0]
    if ordered.size < 3:
        raise InvalidParameterError("need at least 3 distinct tokens to fit")
    if head is None:
        head = max(3, int(np.count_nonzero(ordered >= 2)))
    ordered = ordered[: min(head, ordered.size)]
    ranks = np.arange(1, ordered.size + 1, dtype=np.float64)
    slope, _ = np.polyfit(np.log(ranks), np.log(ordered), deg=1)
    return float(-slope)


def frequency_profile(
    corpus: Corpus, vocab_size: int | None = None
) -> TokenFrequencyProfile:
    """Full token-frequency profile of a corpus."""
    counts = token_frequencies(corpus, vocab_size)
    total = int(counts.sum())
    if total == 0:
        raise InvalidParameterError("corpus has no tokens")
    ordered = np.sort(counts)[::-1]
    distinct = int(np.count_nonzero(counts))
    head = max(1, distinct // 100)
    return TokenFrequencyProfile(
        vocab_size=int(counts.size),
        total_tokens=total,
        distinct_tokens=distinct,
        zipf_exponent=fit_zipf_exponent(counts),
        top1_share=float(ordered[0]) / total,
        top1pct_share=float(ordered[:head].sum()) / total,
    )


@dataclass(frozen=True)
class LengthProfile:
    """Text-length distribution summary."""

    num_texts: int
    mean: float
    median: float
    p95: float
    maximum: int
    below_t: int

    @classmethod
    def from_corpus(cls, corpus: Corpus, t: int = 25) -> "LengthProfile":
        lengths = np.array([int(text.size) for text in corpus], dtype=np.int64)
        if lengths.size == 0:
            raise InvalidParameterError("corpus has no texts")
        return cls(
            num_texts=int(lengths.size),
            mean=float(lengths.mean()),
            median=float(np.median(lengths)),
            p95=float(np.percentile(lengths, 95)),
            maximum=int(lengths.max()),
            below_t=int(np.count_nonzero(lengths < t)),
        )


def ngram_duplication_rate(
    corpus: Corpus, n: int = 50, *, sample_texts: int | None = None, seed: int = 0
) -> float:
    """Fraction of length-``n`` spans whose exact copy appears elsewhere.

    A cheap exact-duplication probe (hash every n-gram): the paper's
    motivation cites estimates of 30-45% near-duplicate web content;
    this measures the exact-duplicate floor of that number.
    """
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    text_ids = np.arange(len(corpus))
    if sample_texts is not None and sample_texts < text_ids.size:
        text_ids = rng.choice(text_ids, size=sample_texts, replace=False)
    first_owner: dict[bytes, int] = {}
    duplicated = 0
    total = 0
    for text_id in text_ids:
        text = np.ascontiguousarray(corpus[int(text_id)])
        for start in range(0, text.size - n + 1, n):
            key = text[start : start + n].tobytes()
            total += 1
            owner = first_owner.get(key)
            if owner is None:
                first_owner[key] = int(text_id)
            elif owner != int(text_id):
                duplicated += 1
    return duplicated / total if total else 0.0
