"""Corpus abstractions, on-disk store and synthetic generators."""

from repro.corpus.corpus import (
    Corpus,
    InMemoryCorpus,
    TOKEN_DTYPE,
    corpus_nbytes,
    infer_vocab_size,
    iter_corpus_batches,
)
from repro.corpus.stats import (
    LengthProfile,
    TokenFrequencyProfile,
    fit_zipf_exponent,
    frequency_profile,
    ngram_duplication_rate,
    token_frequencies,
)
from repro.corpus.store import DiskCorpus, write_corpus
from repro.corpus.textfile import (
    IngestReport,
    ingest_directory,
    ingest_texts,
    iter_text_files,
)
from repro.corpus.synthetic import (
    PlantedDuplicate,
    SyntheticCorpus,
    inject_duplicates,
    minipile,
    synthweb,
    zipf_corpus,
)

__all__ = [
    "Corpus",
    "DiskCorpus",
    "InMemoryCorpus",
    "IngestReport",
    "LengthProfile",
    "TokenFrequencyProfile",
    "fit_zipf_exponent",
    "frequency_profile",
    "ingest_directory",
    "ingest_texts",
    "iter_text_files",
    "ngram_duplication_rate",
    "token_frequencies",
    "PlantedDuplicate",
    "SyntheticCorpus",
    "TOKEN_DTYPE",
    "corpus_nbytes",
    "infer_vocab_size",
    "inject_duplicates",
    "iter_corpus_batches",
    "minipile",
    "synthweb",
    "write_corpus",
    "zipf_corpus",
]
