"""Raw-text ingestion: directory of text files -> tokenized corpus store.

The adoption path for real data: point the ingester at a directory of
``.txt`` documents (or any iterable of strings), train or reuse a BPE
tokenizer, and write a :mod:`repro.corpus.store` corpus ready for
indexing.  Mirrors the paper's preprocessing ("we trained a BPE model
... after tokenization the size was 31 GB") at whatever scale the
input has.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.corpus.store import write_corpus
from repro.exceptions import InvalidParameterError
from repro.tokenizer.bpe import BPETokenizer


@dataclass(frozen=True)
class IngestReport:
    """Summary of one ingestion run."""

    num_texts: int
    total_tokens: int
    vocab_size: int
    corpus_dir: Path
    tokenizer_path: Path


def iter_text_files(directory: str | Path, pattern: str = "*.txt") -> Iterator[str]:
    """Yield the contents of every matching file, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        raise InvalidParameterError(f"{directory} is not a directory")
    for path in sorted(directory.glob(pattern)):
        yield path.read_text(encoding="utf-8", errors="replace")


def ingest_texts(
    texts: Iterable[str],
    output_dir: str | Path,
    *,
    tokenizer: BPETokenizer | None = None,
    vocab_size: int = 4096,
    train_sample: int = 10_000,
) -> IngestReport:
    """Tokenize ``texts`` and write a corpus store plus the tokenizer.

    When no tokenizer is given, one is trained on the first
    ``train_sample`` texts (the paper trains on a 1M-text sample).  The
    input iterable is materialized, so pass a list for large inputs you
    want streamed twice, or a pre-trained tokenizer to stay single-pass.
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    materialized = list(texts)
    if tokenizer is None:
        tokenizer = BPETokenizer.train(
            materialized[:train_sample], vocab_size=vocab_size
        )
    corpus_dir = output_dir / "corpus"
    token_stream = (tokenizer.encode(text) for text in materialized)
    write_corpus(token_stream, corpus_dir)
    tokenizer_path = output_dir / "tokenizer.json"
    tokenizer.save(tokenizer_path)
    from repro.corpus.store import DiskCorpus

    stored = DiskCorpus(corpus_dir)
    return IngestReport(
        num_texts=len(stored),
        total_tokens=stored.total_tokens,
        vocab_size=tokenizer.vocab_size,
        corpus_dir=corpus_dir,
        tokenizer_path=tokenizer_path,
    )


def ingest_directory(
    input_dir: str | Path,
    output_dir: str | Path,
    *,
    pattern: str = "*.txt",
    tokenizer: BPETokenizer | None = None,
    vocab_size: int = 4096,
) -> IngestReport:
    """Ingest every matching file under ``input_dir``."""
    return ingest_texts(
        iter_text_files(input_dir, pattern),
        output_dir,
        tokenizer=tokenizer,
        vocab_size=vocab_size,
    )
