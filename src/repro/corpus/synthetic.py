"""Synthetic corpus generators standing in for OpenWebText / Pile.

The paper's evaluation runs on web-scale corpora we cannot ship.  What
the algorithms are sensitive to is not the prose itself but three
statistical properties, all of which the generators here control:

* **token-frequency skew** — natural-language token frequencies follow
  Zipf's law (paper Section 3.5 relies on this to motivate prefix
  filtering: a few inverted lists are very long).  Texts are sampled
  from a Zipf–Mandelbrot distribution with configurable exponent;
* **corpus scale** — number of texts and text-length distribution are
  free parameters, so the linear-scaling experiments (Figures 2/3)
  sweep them directly;
* **duplicate structure** — web corpora contain 30–45% near-duplicate
  content.  :func:`inject_duplicates` copies spans between texts with
  controlled token-level mutations, recording provenance so experiments
  know the planted ground truth.

Two named presets mirror the paper's datasets at reduced scale:
:func:`synthweb` (OpenWebText stand-in) and :func:`minipile` (Pile
stand-in, a mixture over several "domains" with distinct vocabularies).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corpus.corpus import TOKEN_DTYPE, InMemoryCorpus
from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class PlantedDuplicate:
    """Provenance record for one injected near-duplicate span."""

    source_text: int
    source_start: int
    target_text: int
    target_start: int
    length: int
    mutated_tokens: int

    @property
    def expected_jaccard_upper(self) -> float:
        """Crude upper bound on the planted pair's distinct Jaccard."""
        return max(0.0, (self.length - self.mutated_tokens) / self.length)


@dataclass
class SyntheticCorpus:
    """A generated corpus together with its planting ground truth."""

    corpus: InMemoryCorpus
    vocab_size: int
    planted: list[PlantedDuplicate] = field(default_factory=list)


def _zipf_weights(vocab_size: int, exponent: float, shift: float) -> np.ndarray:
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks + shift, exponent)
    return weights / weights.sum()


def zipf_corpus(
    num_texts: int,
    mean_length: int,
    vocab_size: int,
    *,
    zipf_exponent: float = 1.1,
    zipf_shift: float = 2.7,
    min_length: int = 8,
    paragraph_repeat_rate: float = 0.0,
    seed: int = 0,
) -> InMemoryCorpus:
    """Sample a corpus of Zipf-distributed token sequences.

    Text lengths are geometric-ish (exponential, clipped below by
    ``min_length``) around ``mean_length``, mimicking the long-tailed
    document lengths of web corpora.

    ``paragraph_repeat_rate`` adds *within-text* repetition: for that
    fraction of texts, a random internal span is copied to another
    position of the same text — the "long repeated strings" behaviour
    the paper observes in web documents (navigation chrome, quoted
    passages), which also stresses the duplicate-token tie-breaking
    paths of window generation.
    """
    if num_texts <= 0:
        raise InvalidParameterError(f"num_texts must be positive, got {num_texts}")
    if mean_length < min_length:
        raise InvalidParameterError(
            f"mean_length ({mean_length}) must be >= min_length ({min_length})"
        )
    if vocab_size <= 1:
        raise InvalidParameterError(f"vocab_size must be > 1, got {vocab_size}")
    if not 0.0 <= paragraph_repeat_rate <= 1.0:
        raise InvalidParameterError("paragraph_repeat_rate must be in [0, 1]")
    rng = np.random.default_rng(seed)
    weights = _zipf_weights(vocab_size, zipf_exponent, zipf_shift)
    lengths = np.maximum(
        min_length, rng.exponential(scale=mean_length - min_length, size=num_texts) + min_length
    ).astype(np.int64)
    texts = [
        rng.choice(vocab_size, size=int(length), p=weights).astype(TOKEN_DTYPE)
        for length in lengths
    ]
    if paragraph_repeat_rate > 0.0:
        for text in texts:
            if text.size < 3 * min_length or rng.random() >= paragraph_repeat_rate:
                continue
            span = int(rng.integers(min_length, max(min_length + 1, text.size // 3)))
            src = int(rng.integers(0, text.size - span + 1))
            dst = int(rng.integers(0, text.size - span + 1))
            text[dst : dst + span] = text[src : src + span]
    return InMemoryCorpus(texts)


def inject_duplicates(
    corpus: InMemoryCorpus,
    *,
    rate: float = 0.1,
    span_length: int = 64,
    mutation_rate: float = 0.05,
    vocab_size: int | None = None,
    seed: int = 0,
) -> SyntheticCorpus:
    """Copy spans between texts with token-level mutations.

    For a ``rate`` fraction of texts, a random span of ``span_length``
    tokens from a random *source* text is written over a random
    position of the *target* text, with each copied token independently
    replaced by a random one with probability ``mutation_rate``.  This
    plants near-duplicate pairs whose similarity concentrates around
    ``1 - mutation_rate`` — the "differ by a couple of tokens out of
    100" regime the paper studies.

    Returns a new :class:`SyntheticCorpus`; the input corpus is not
    modified.
    """
    if not 0.0 <= rate <= 1.0:
        raise InvalidParameterError(f"rate must be in [0, 1], got {rate}")
    if not 0.0 <= mutation_rate <= 1.0:
        raise InvalidParameterError(f"mutation_rate must be in [0, 1], got {mutation_rate}")
    if span_length <= 0:
        raise InvalidParameterError(f"span_length must be positive, got {span_length}")
    rng = np.random.default_rng(seed)
    texts = [np.array(text) for text in corpus]
    if vocab_size is None:
        vocab_size = corpus.vocabulary_size()
    planted: list[PlantedDuplicate] = []

    eligible = [i for i, text in enumerate(texts) if text.size >= span_length]
    num_plants = int(round(rate * len(texts)))
    for _ in range(num_plants):
        if len(eligible) < 2:
            break
        source, target = rng.choice(len(eligible), size=2, replace=False)
        source_id, target_id = eligible[int(source)], eligible[int(target)]
        src = texts[source_id]
        dst = texts[target_id]
        src_start = int(rng.integers(0, src.size - span_length + 1))
        dst_start = int(rng.integers(0, dst.size - span_length + 1))
        span = np.array(src[src_start : src_start + span_length])
        mutate = rng.random(span_length) < mutation_rate
        num_mutated = int(mutate.sum())
        if num_mutated:
            span[mutate] = rng.integers(0, vocab_size, size=num_mutated, dtype=TOKEN_DTYPE)
        dst[dst_start : dst_start + span_length] = span
        planted.append(
            PlantedDuplicate(
                source_text=source_id,
                source_start=src_start,
                target_text=target_id,
                target_start=dst_start,
                length=span_length,
                mutated_tokens=num_mutated,
            )
        )
    return SyntheticCorpus(InMemoryCorpus(texts), vocab_size, planted)


def synthweb(
    num_texts: int = 2000,
    mean_length: int = 300,
    vocab_size: int = 8192,
    *,
    duplicate_rate: float = 0.15,
    span_length: int = 64,
    mutation_rate: float = 0.05,
    seed: int = 0,
) -> SyntheticCorpus:
    """OpenWebText stand-in: one Zipf domain plus planted near-duplicates."""
    base = zipf_corpus(num_texts, mean_length, vocab_size, seed=seed)
    return inject_duplicates(
        base,
        rate=duplicate_rate,
        span_length=span_length,
        mutation_rate=mutation_rate,
        vocab_size=vocab_size,
        seed=seed + 1,
    )


def minipile(
    num_texts: int = 2000,
    mean_length: int = 300,
    vocab_size: int = 8192,
    *,
    num_domains: int = 4,
    duplicate_rate: float = 0.2,
    span_length: int = 64,
    mutation_rate: float = 0.05,
    seed: int = 0,
) -> SyntheticCorpus:
    """Pile stand-in: a mixture of domains with shifted vocabularies.

    Each domain draws from the full vocabulary but with its Zipf ranks
    rotated, so domains share common tokens yet differ in their
    frequent ones — mirroring Pile's 22 heterogeneous sub-datasets.
    """
    if num_domains <= 0:
        raise InvalidParameterError(f"num_domains must be positive, got {num_domains}")
    rng = np.random.default_rng(seed)
    weights = _zipf_weights(vocab_size, 1.1, 2.7)
    per_domain = max(1, num_texts // num_domains)
    texts: list[np.ndarray] = []
    for domain in range(num_domains):
        rotation = (domain * vocab_size) // num_domains
        mapping = np.roll(np.arange(vocab_size), rotation)
        count = per_domain if domain < num_domains - 1 else num_texts - per_domain * (num_domains - 1)
        lengths = np.maximum(
            8, rng.exponential(scale=max(1, mean_length - 8), size=count) + 8
        ).astype(np.int64)
        for length in lengths:
            ranks = rng.choice(vocab_size, size=int(length), p=weights)
            texts.append(mapping[ranks].astype(TOKEN_DTYPE))
    order = rng.permutation(len(texts))
    base = InMemoryCorpus([texts[i] for i in order])
    return inject_duplicates(
        base,
        rate=duplicate_rate,
        span_length=span_length,
        mutation_rate=mutation_rate,
        vocab_size=vocab_size,
        seed=seed + 1,
    )
