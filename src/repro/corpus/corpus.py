"""Corpus abstractions: tokenized texts and collections of them.

A *corpus* is an ordered collection of *texts*; a text is a sequence of
integer token ids (4-byte unsigned integers, matching the paper's
storage assumption).  Two concrete corpora exist:

* :class:`InMemoryCorpus` — a list of numpy arrays, used for
  medium-scale datasets that fit in memory (the paper's OpenWebText
  case) and throughout the tests;
* :class:`repro.corpus.store.DiskCorpus` — a memory-mapped on-disk
  corpus streamed in batches (the paper's C4/Pile case).

Both satisfy the small :class:`Corpus` protocol consumed by the index
builders and the searcher.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.exceptions import InvalidParameterError

#: Storage dtype for token ids.
TOKEN_DTYPE = np.dtype(np.uint32)


@runtime_checkable
class Corpus(Protocol):
    """Minimal corpus interface used by builders and searchers."""

    def __len__(self) -> int:
        """Number of texts."""
        ...

    def __getitem__(self, text_id: int) -> np.ndarray:
        """Token array of one text."""
        ...

    def __iter__(self) -> Iterator[np.ndarray]:
        """Iterate over the texts in id order."""
        ...

    @property
    def total_tokens(self) -> int:
        """Total number of tokens across all texts."""
        ...


class InMemoryCorpus:
    """A corpus held fully in memory as a list of ``uint32`` arrays."""

    def __init__(self, texts: Iterable[Sequence[int] | np.ndarray]) -> None:
        self._texts = [np.ascontiguousarray(t, dtype=TOKEN_DTYPE) for t in texts]
        for text_id, tokens in enumerate(self._texts):
            if tokens.ndim != 1:
                raise InvalidParameterError(f"text {text_id} is not one-dimensional")
        self._total = int(sum(t.size for t in self._texts))

    def __len__(self) -> int:
        return len(self._texts)

    def __getitem__(self, text_id: int) -> np.ndarray:
        return self._texts[text_id]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._texts)

    @property
    def total_tokens(self) -> int:
        return self._total

    def iter_batches(self, batch_size: int) -> Iterator[list[tuple[int, np.ndarray]]]:
        """Yield ``(text_id, tokens)`` batches of at most ``batch_size`` texts."""
        if batch_size <= 0:
            raise InvalidParameterError(f"batch_size must be positive, got {batch_size}")
        batch: list[tuple[int, np.ndarray]] = []
        for text_id, tokens in enumerate(self._texts):
            batch.append((text_id, tokens))
            if len(batch) == batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def vocabulary_size(self) -> int:
        """One past the largest token id present (0 for an empty corpus)."""
        top = 0
        for tokens in self._texts:
            if tokens.size:
                top = max(top, int(tokens.max()) + 1)
        return top

    def subset(self, num_texts: int) -> "InMemoryCorpus":
        """A prefix corpus with the first ``num_texts`` texts (for size sweeps)."""
        if num_texts < 0:
            raise InvalidParameterError(f"num_texts must be >= 0, got {num_texts}")
        return InMemoryCorpus(self._texts[:num_texts])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InMemoryCorpus(texts={len(self)}, tokens={self.total_tokens})"


def corpus_nbytes(corpus: Corpus) -> int:
    """Size of the corpus in bytes under the 4-byte-token convention."""
    return corpus.total_tokens * TOKEN_DTYPE.itemsize


def infer_vocab_size(corpus: Corpus) -> int:
    """Token-id space of a corpus: one past the largest id, at least 1.

    Every index builder needs this number to size the precomputed hash
    table; corpora that already track it (``vocabulary_size()``) answer
    without a scan, anything else is swept once.
    """
    probe = getattr(corpus, "vocabulary_size", None)
    if callable(probe):
        return max(1, int(probe()))
    return max((int(text.max()) + 1 for text in corpus if text.size), default=1)


def iter_corpus_batches(
    corpus: Corpus, batch_size: int
) -> Iterator[list[tuple[int, np.ndarray]]]:
    """Stream ``(text_id, tokens)`` batches from any corpus.

    Uses the corpus's own ``iter_batches`` (sequential I/O on
    :class:`~repro.corpus.store.DiskCorpus`) when present, falling back
    to indexed access so builders accept any :class:`Corpus`.
    """
    if batch_size <= 0:
        raise InvalidParameterError(f"batch_size must be positive, got {batch_size}")
    native = getattr(corpus, "iter_batches", None)
    if callable(native):
        yield from native(batch_size)
        return
    batch: list[tuple[int, np.ndarray]] = []
    for text_id in range(len(corpus)):
        batch.append((text_id, np.asarray(corpus[text_id])))
        if len(batch) == batch_size:
            yield batch
            batch = []
    if batch:
        yield batch
