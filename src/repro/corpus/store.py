"""On-disk tokenized corpus store.

Large corpora (the paper's C4 / Pile case) do not fit in memory; the
index builder streams them in batches.  The store uses three files in a
directory:

* ``tokens.bin`` — all token ids concatenated, little-endian ``uint32``
  (the paper's "4-byte integer per token" convention);
* ``offsets.npy`` — ``int64`` array of length ``num_texts + 1``; text
  ``i`` occupies ``tokens[offsets[i] : offsets[i + 1]]``;
* ``meta.json`` — format version and integrity numbers.

Reads go through ``numpy.memmap``, so random access to a single text
touches only its pages, and batch iteration is sequential I/O.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.corpus.corpus import TOKEN_DTYPE, Corpus, InMemoryCorpus
from repro.exceptions import CorpusFormatError, InvalidParameterError

_FORMAT_VERSION = 1
_TOKENS_FILE = "tokens.bin"
_OFFSETS_FILE = "offsets.npy"
_META_FILE = "meta.json"


def write_corpus(corpus: Corpus | Iterable[np.ndarray], directory: str | Path) -> Path:
    """Write a corpus to ``directory`` in the store format.

    Accepts any iterable of token arrays (so a generator can be spilled
    without materializing the corpus in memory).  Returns the directory
    path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    offsets = [0]
    total = 0
    with open(directory / _TOKENS_FILE, "wb") as handle:
        for tokens in corpus:
            array = np.ascontiguousarray(tokens, dtype=TOKEN_DTYPE)
            array.tofile(handle)
            total += array.size
            offsets.append(total)
    np.save(directory / _OFFSETS_FILE, np.asarray(offsets, dtype=np.int64))
    meta = {
        "format_version": _FORMAT_VERSION,
        "num_texts": len(offsets) - 1,
        "total_tokens": total,
        "token_bytes": TOKEN_DTYPE.itemsize,
    }
    (directory / _META_FILE).write_text(json.dumps(meta))
    return directory


class DiskCorpus:
    """Memory-mapped read access to a corpus written by :func:`write_corpus`."""

    def __init__(self, directory: str | Path) -> None:
        self._directory = Path(directory)
        meta_path = self._directory / _META_FILE
        if not meta_path.exists():
            raise CorpusFormatError(f"missing {_META_FILE} in {self._directory}")
        meta = json.loads(meta_path.read_text())
        if meta.get("format_version") != _FORMAT_VERSION:
            raise CorpusFormatError(
                f"unsupported corpus format version {meta.get('format_version')!r}"
            )
        self._offsets = np.load(self._directory / _OFFSETS_FILE)
        tokens_path = self._directory / _TOKENS_FILE
        expected_bytes = int(self._offsets[-1]) * TOKEN_DTYPE.itemsize
        actual_bytes = tokens_path.stat().st_size
        if actual_bytes != expected_bytes:
            raise CorpusFormatError(
                f"tokens.bin has {actual_bytes} bytes, expected {expected_bytes}"
            )
        if meta["num_texts"] != len(self._offsets) - 1:
            raise CorpusFormatError("meta.json num_texts disagrees with offsets.npy")
        self._total = int(self._offsets[-1])
        if self._total > 0:
            self._tokens = np.memmap(tokens_path, dtype=TOKEN_DTYPE, mode="r")
        else:
            self._tokens = np.empty(0, dtype=TOKEN_DTYPE)
        self._vocab_size: int | None = None

    @property
    def directory(self) -> Path:
        return self._directory

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, text_id: int) -> np.ndarray:
        if not 0 <= text_id < len(self):
            raise IndexError(f"text id {text_id} out of range [0, {len(self)})")
        lo, hi = int(self._offsets[text_id]), int(self._offsets[text_id + 1])
        return np.asarray(self._tokens[lo:hi])

    def __iter__(self) -> Iterator[np.ndarray]:
        for text_id in range(len(self)):
            yield self[text_id]

    @property
    def total_tokens(self) -> int:
        return self._total

    def iter_batches(self, batch_size: int) -> Iterator[list[tuple[int, np.ndarray]]]:
        """Yield ``(text_id, tokens)`` batches of at most ``batch_size`` texts.

        Each batch is copied out of the memory map so callers may hold
        it after the next batch is produced.
        """
        if batch_size <= 0:
            raise InvalidParameterError(f"batch_size must be positive, got {batch_size}")
        batch: list[tuple[int, np.ndarray]] = []
        for text_id in range(len(self)):
            batch.append((text_id, np.array(self[text_id])))
            if len(batch) == batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def vocabulary_size(self) -> int:
        """One past the largest token id present (0 for an empty corpus).

        Computed with one sequential sweep of the memory map and cached,
        so repeated builds over the same corpus scan it only once.
        """
        if self._vocab_size is None:
            self._vocab_size = int(self._tokens.max()) + 1 if self._total else 0
        return self._vocab_size

    def to_memory(self) -> InMemoryCorpus:
        """Load the whole corpus into an :class:`InMemoryCorpus`."""
        return InMemoryCorpus([np.array(text) for text in self])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiskCorpus({str(self._directory)!r}, texts={len(self)}, tokens={self.total_tokens})"
