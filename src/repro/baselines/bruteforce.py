"""Brute-force near-duplicate search baselines (ground truth).

Two oracles, both quadratic in text length and therefore only usable at
test/benchmark scale — which is exactly the point the paper makes about
why an index is needed:

* :func:`search_exact` answers the paper's Definition 1: all sequences
  whose *exact* Jaccard similarity with the query reaches ``theta``;
* :func:`search_definition2` answers Definition 2 on a given hash
  family: all sequences whose min-hash sketch collides with the query's
  in at least ``ceil(k * theta)`` trials.  The indexed searcher must
  return *exactly* this set (Theorem 2), so this oracle is the
  correctness reference for the whole engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.hashing import HashFamily
from repro.core.theory import collision_threshold
from repro.core.verify import Span, distinct_jaccard, multiset_jaccard
from repro.corpus.corpus import Corpus
from repro.exceptions import InvalidParameterError


@dataclass
class BruteForceStats:
    """Work accounting for the scalability comparisons."""

    sequences_examined: int = 0
    seconds: float = 0.0


def _check(theta: float, t: int) -> None:
    if not 0.0 < theta <= 1.0:
        raise InvalidParameterError(f"theta must be in (0, 1], got {theta}")
    if t < 1:
        raise InvalidParameterError(f"t must be >= 1, got {t}")


def search_exact(
    corpus: Corpus,
    query: np.ndarray,
    theta: float,
    t: int,
    *,
    similarity: str = "distinct",
    stats: BruteForceStats | None = None,
) -> list[Span]:
    """Definition 1 by enumeration of every sequence of length ``>= t``.

    ``similarity`` selects distinct (default) or multiset Jaccard.
    """
    _check(theta, t)
    measure = distinct_jaccard if similarity == "distinct" else multiset_jaccard
    query = np.asarray(query)
    begin = time.perf_counter()
    results: list[Span] = []
    examined = 0
    for text_id in range(len(corpus)):
        text = np.asarray(corpus[text_id])
        n = text.size
        for i in range(n):
            for j in range(i + t - 1, n):
                examined += 1
                if measure(query, text[i : j + 1]) >= theta:
                    results.append(Span(text_id, i, j))
    if stats is not None:
        stats.sequences_examined += examined
        stats.seconds += time.perf_counter() - begin
    return results


def search_definition2(
    corpus: Corpus,
    query: np.ndarray,
    theta: float,
    t: int,
    family: HashFamily,
    *,
    stats: BruteForceStats | None = None,
) -> list[Span]:
    """Definition 2 by enumeration: the indexed searcher's exact target set.

    Incrementally maintains the set of distinct tokens per ``(i, j)``
    extension so each sequence's sketch costs one vectorized min
    update rather than a full re-hash — still quadratic overall.
    """
    _check(theta, t)
    query = np.asarray(query)
    beta = collision_threshold(family.k, theta)
    query_sketch = family.sketch(query)
    begin = time.perf_counter()
    results: list[Span] = []
    examined = 0
    for text_id in range(len(corpus)):
        text = np.asarray(corpus[text_id])
        n = text.size
        # token_hashes[f, p] = hash of text token p under function f.
        token_hashes = np.stack(
            [family.hash_tokens(text, f) for f in range(family.k)]
        )
        for i in range(n):
            if i + t - 1 >= n:
                break
            # Running k-mins sketch of text[i..j] as j grows.
            sketch = token_hashes[:, i].copy()
            for j in range(i, n):
                if j > i:
                    np.minimum(sketch, token_hashes[:, j], out=sketch)
                if j - i + 1 < t:
                    continue
                examined += 1
                if int(np.count_nonzero(sketch == query_sketch)) >= beta:
                    results.append(Span(text_id, i, j))
    if stats is not None:
        stats.sequences_examined += examined
        stats.seconds += time.perf_counter() - begin
    return results
