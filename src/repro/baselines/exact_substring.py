"""Exact-substring search over the corpus (the *exact* memorization baseline).

Prior memorization studies (Lee et al., Carlini et al. — the work the
paper's Sections 1 and 6 build on) measure *exact* memorization: does a
generated sequence occur verbatim in the training corpus?  The paper's
thesis is that near-duplicates are far more pervasive than exact
duplicates, so the exact matcher is the natural baseline to quantify
that gap against (`benchmarks/bench_exact_vs_near.py`).

The index is a suffix array over the corpus texts concatenated with
per-text sentinel separators (each sentinel is a distinct value above
the vocabulary, so matches never span texts).  Construction uses the
prefix-doubling method on numpy ranks (O(n log² n)); queries are two
binary searches (O(|q| log n)) returning every occurrence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.verify import Span
from repro.corpus.corpus import Corpus
from repro.exceptions import InvalidParameterError


@dataclass
class ExactSubstringStats:
    """Build/query accounting."""

    total_positions: int = 0
    build_seconds: float = 0.0
    queries: int = 0
    query_seconds: float = 0.0


class SuffixArrayIndex:
    """Suffix array over a token corpus for exact-substring queries."""

    def __init__(self) -> None:
        self._sequence: np.ndarray | None = None
        self._suffixes: np.ndarray | None = None
        self._text_of: np.ndarray | None = None
        self._start_of: np.ndarray | None = None
        self.stats = ExactSubstringStats()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, corpus: Corpus) -> "SuffixArrayIndex":
        """Concatenate the corpus with sentinels and sort all suffixes."""
        begin = time.perf_counter()
        vocab_top = 0
        for text in corpus:
            if text.size:
                vocab_top = max(vocab_top, int(text.max()) + 1)
        chunks: list[np.ndarray] = []
        text_of: list[np.ndarray] = []
        start_of: list[np.ndarray] = []
        offset = 0
        for text_id in range(len(corpus)):
            tokens = np.asarray(corpus[text_id], dtype=np.int64)
            chunks.append(tokens)
            # Unique sentinel per text: beyond any real token value.
            chunks.append(np.array([vocab_top + text_id], dtype=np.int64))
            text_of.append(np.full(tokens.size + 1, text_id, dtype=np.int64))
            start_of.append(np.full(tokens.size + 1, offset, dtype=np.int64))
            offset += tokens.size + 1
        if not chunks:
            sequence = np.empty(0, dtype=np.int64)
        else:
            sequence = np.concatenate(chunks)
        self._sequence = sequence
        self._text_of = (
            np.concatenate(text_of) if text_of else np.empty(0, dtype=np.int64)
        )
        self._start_of = (
            np.concatenate(start_of) if start_of else np.empty(0, dtype=np.int64)
        )
        self._suffixes = self._sort_suffixes(sequence)
        self.stats.total_positions = int(sequence.size)
        self.stats.build_seconds += time.perf_counter() - begin
        return self

    @staticmethod
    def _sort_suffixes(sequence: np.ndarray) -> np.ndarray:
        """Prefix-doubling suffix sort (ranks halve-merged each round)."""
        n = sequence.size
        if n == 0:
            return np.empty(0, dtype=np.int64)
        # Initial ranks: token values (dense-ranked for stability).
        _, rank = np.unique(sequence, return_inverse=True)
        rank = rank.astype(np.int64)
        suffixes = np.arange(n, dtype=np.int64)
        step = 1
        while step < n:
            # Composite key: (rank[i], rank[i + step]) with -1 past the end.
            second = np.full(n, -1, dtype=np.int64)
            second[: n - step] = rank[step:]
            order = np.lexsort((second, rank))
            new_rank = np.empty(n, dtype=np.int64)
            key_prev = (rank[order][1:] != rank[order][:-1]) | (
                second[order][1:] != second[order][:-1]
            )
            new_rank[order] = np.concatenate(([0], np.cumsum(key_prev)))
            rank = new_rank
            suffixes = order
            if int(rank.max()) == n - 1:
                break
            step *= 2
        return suffixes

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _compare_at(self, suffix_start: int, query: np.ndarray) -> int:
        """Lexicographic comparison of suffix vs query prefix: -1/0/+1."""
        sequence = self._sequence
        end = min(suffix_start + query.size, sequence.size)
        window = sequence[suffix_start:end]
        q = query[: window.size]
        diff = window != q
        if diff.any():
            pos = int(np.argmax(diff))
            return -1 if window[pos] < q[pos] else 1
        if window.size < query.size:
            return -1  # suffix is a strict prefix of the query -> smaller
        return 0

    def find_occurrences(self, query: np.ndarray) -> list[Span]:
        """Every exact occurrence of ``query`` as a ``Span``."""
        if self._suffixes is None:
            raise InvalidParameterError("index not built")
        query = np.asarray(query, dtype=np.int64)
        if query.size == 0:
            raise InvalidParameterError("query must be non-empty")
        begin = time.perf_counter()
        suffixes = self._suffixes

        lo, hi = 0, suffixes.size
        while lo < hi:  # first suffix >= query
            mid = (lo + hi) // 2
            if self._compare_at(int(suffixes[mid]), query) < 0:
                lo = mid + 1
            else:
                hi = mid
        first = lo
        hi = suffixes.size
        while lo < hi:  # first suffix with prefix > query
            mid = (lo + hi) // 2
            if self._compare_at(int(suffixes[mid]), query) <= 0:
                lo = mid + 1
            else:
                hi = mid
        last = lo

        spans = []
        for slot in range(first, last):
            position = int(suffixes[slot])
            text_id = int(self._text_of[position])
            local = position - int(self._start_of[position])
            spans.append(Span(text_id, local, local + query.size - 1))
        spans.sort(key=lambda s: (s.text_id, s.start))
        self.stats.queries += 1
        self.stats.query_seconds += time.perf_counter() - begin
        return spans

    def contains(self, query: np.ndarray) -> bool:
        """Whether ``query`` occurs verbatim anywhere in the corpus."""
        return bool(self.find_occurrences(query))

    def count(self, query: np.ndarray) -> int:
        """Number of exact occurrences (the duplication count that drives
        super-linear memorization in the paper's motivation)."""
        return len(self.find_occurrences(query))
