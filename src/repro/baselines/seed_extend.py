"""Seed-and-extend heuristic baseline (paper Section 6, related work).

The frequently used near-duplicate heuristic: find exact *seed* matches
(shared n-grams) between the query and the corpus, then extend each
seed left and right while the similarity stays high.  The paper points
out two shortcomings that the comparison benchmark demonstrates:

* **no guarantee** — a near-duplicate pair with no shared n-gram of the
  seed length is simply missed (token substitutions every few tokens
  defeat any fixed seed length);
* **order sensitivity** — seeds are contiguous n-grams, but Jaccard is
  a bag-of-tokens measure; reordered near-duplicates have high Jaccard
  yet few seeds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.verify import Span, distinct_jaccard, merge_overlapping_spans
from repro.corpus.corpus import Corpus
from repro.exceptions import InvalidParameterError


@dataclass
class SeedExtendStats:
    """Work accounting for the comparison benchmarks."""

    seeds_indexed: int = 0
    seeds_matched: int = 0
    extensions: int = 0
    build_seconds: float = 0.0
    query_seconds: float = 0.0


class SeedExtendIndex:
    """Exact n-gram seed index with greedy extension.

    Parameters
    ----------
    seed_length:
        Length of the exact-match seeds (n-grams).
    """

    def __init__(self, seed_length: int = 8) -> None:
        if seed_length < 1:
            raise InvalidParameterError(f"seed_length must be >= 1, got {seed_length}")
        self.seed_length = seed_length
        self._seeds: dict[bytes, list[tuple[int, int]]] = {}
        self.stats = SeedExtendStats()

    def build(self, corpus: Corpus) -> "SeedExtendIndex":
        """Index every n-gram of every text."""
        begin = time.perf_counter()
        width = self.seed_length
        for text_id in range(len(corpus)):
            text = np.ascontiguousarray(corpus[text_id])
            for start in range(0, text.size - width + 1):
                key = text[start : start + width].tobytes()
                self._seeds.setdefault(key, []).append((text_id, start))
                self.stats.seeds_indexed += 1
        self.stats.build_seconds += time.perf_counter() - begin
        return self

    def query(
        self,
        corpus: Corpus,
        query: np.ndarray,
        theta: float,
        t: int,
        *,
        max_extension: int = 256,
    ) -> list[Span]:
        """Match query n-grams, extend greedily, verify with exact Jaccard.

        Each matched seed is extended one token at a time on the side
        that keeps the Jaccard against the query highest, until neither
        side improves it or ``max_extension`` steps elapse; extensions
        with final Jaccard ``>= theta`` and length ``>= t`` are
        reported (merged into disjoint spans per text).
        """
        if not 0.0 < theta <= 1.0:
            raise InvalidParameterError(f"theta must be in (0, 1], got {theta}")
        if t < 1:
            raise InvalidParameterError(f"t must be >= 1, got {t}")
        begin = time.perf_counter()
        query = np.ascontiguousarray(query)
        width = self.seed_length
        matches: list[Span] = []
        seen: set[tuple[int, int]] = set()
        for start in range(0, query.size - width + 1):
            key = query[start : start + width].tobytes()
            for text_id, pos in self._seeds.get(key, ()):
                if (text_id, pos) in seen:
                    continue
                seen.add((text_id, pos))
                self.stats.seeds_matched += 1
                span = self._extend(corpus, query, text_id, pos, max_extension)
                if span is not None and span.length >= t:
                    tokens = np.asarray(corpus[span.text_id])[span.start : span.end + 1]
                    if distinct_jaccard(query, tokens) >= theta:
                        matches.append(span)
        self.stats.query_seconds += time.perf_counter() - begin
        return merge_overlapping_spans(matches)

    def _extend(
        self,
        corpus: Corpus,
        query: np.ndarray,
        text_id: int,
        pos: int,
        max_extension: int,
    ) -> Span | None:
        """Greedy bidirectional extension maximizing Jaccard with the query."""
        text = np.asarray(corpus[text_id])
        lo, hi = pos, pos + self.seed_length - 1
        best = distinct_jaccard(query, text[lo : hi + 1])
        for _ in range(max_extension):
            self.stats.extensions += 1
            left_gain = (
                distinct_jaccard(query, text[lo - 1 : hi + 1]) if lo > 0 else -1.0
            )
            right_gain = (
                distinct_jaccard(query, text[lo : hi + 2])
                if hi + 1 < text.size
                else -1.0
            )
            if left_gain < best and right_gain < best:
                break
            if left_gain >= right_gain:
                lo -= 1
                best = left_gain
            else:
                hi += 1
                best = right_gain
        return Span(text_id, lo, hi)
