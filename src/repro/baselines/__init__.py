"""Baselines: brute-force oracles, window LSH, seed-and-extend."""

from repro.baselines.bruteforce import (
    BruteForceStats,
    search_definition2,
    search_exact,
)
from repro.baselines.exact_substring import ExactSubstringStats, SuffixArrayIndex
from repro.baselines.lsh import WindowLSHIndex, WindowLSHStats
from repro.baselines.seed_extend import SeedExtendIndex, SeedExtendStats

__all__ = [
    "BruteForceStats",
    "ExactSubstringStats",
    "SeedExtendIndex",
    "SuffixArrayIndex",
    "SeedExtendStats",
    "WindowLSHIndex",
    "WindowLSHStats",
    "search_definition2",
    "search_exact",
]
