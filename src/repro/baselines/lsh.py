"""Classic banded MinHash-LSH over enumerated windows (naive baseline).

This is the "datasketch-style" approach a practitioner would reach for
first: enumerate fixed-width sliding windows of every text, sketch each
with ``k`` min-hashes, band the sketch into ``b`` bands of ``r`` rows
and bucket windows by band hash.  A query probes its own band hashes
and verifies candidates with exact Jaccard.

Its two structural problems are what motivate the paper's design:

* the index holds a sketch *per window position* — index size scales
  like ``k * N / stride`` entries versus the paper's ``2 k N / t``
  compact windows, and with ``stride=1`` it is an order of magnitude
  larger for realistic ``t``;
* it only represents sequences of the chosen widths: a near-duplicate
  of a different length is invisible, so there is no completeness
  guarantee of any kind.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.hashing import HashFamily
from repro.core.verify import Span, distinct_jaccard
from repro.corpus.corpus import Corpus
from repro.exceptions import InvalidParameterError


@dataclass
class WindowLSHStats:
    """Index/query accounting for the comparison benchmarks."""

    windows_indexed: int = 0
    index_entries: int = 0
    build_seconds: float = 0.0
    candidates_probed: int = 0
    query_seconds: float = 0.0


class WindowLSHIndex:
    """Banded LSH index over fixed-width sliding windows.

    Parameters
    ----------
    family:
        Hash family whose ``k`` must equal ``bands * rows``.
    window:
        Width of the enumerated windows.
    stride:
        Step between window starts (1 = every position, the faithful
        but explosive setting).
    bands, rows:
        Banding configuration; candidate probability for Jaccard ``s``
        is ``1 - (1 - s^rows)^bands``.
    """

    def __init__(
        self,
        family: HashFamily,
        *,
        window: int,
        stride: int = 1,
        bands: int | None = None,
        rows: int | None = None,
    ) -> None:
        if window < 1:
            raise InvalidParameterError(f"window must be >= 1, got {window}")
        if stride < 1:
            raise InvalidParameterError(f"stride must be >= 1, got {stride}")
        if bands is None and rows is None:
            rows = max(1, family.k // 8)
            bands = family.k // rows
        if bands is None or rows is None or bands * rows != family.k:
            raise InvalidParameterError(
                f"bands * rows must equal k={family.k}, got bands={bands}, rows={rows}"
            )
        self.family = family
        self.window = window
        self.stride = stride
        self.bands = bands
        self.rows = rows
        self._buckets: list[dict[bytes, list[tuple[int, int]]]] = [
            {} for _ in range(bands)
        ]
        self.stats = WindowLSHStats()

    # ------------------------------------------------------------------
    def _band_keys(self, sketch: np.ndarray) -> list[bytes]:
        return [
            sketch[band * self.rows : (band + 1) * self.rows].tobytes()
            for band in range(self.bands)
        ]

    def build(self, corpus: Corpus) -> "WindowLSHIndex":
        """Enumerate and bucket every window of every text."""
        begin = time.perf_counter()
        for text_id in range(len(corpus)):
            text = np.asarray(corpus[text_id])
            for start in range(0, max(0, text.size - self.window + 1), self.stride):
                sketch = self.family.sketch(text[start : start + self.window])
                self.stats.windows_indexed += 1
                for band, key in enumerate(self._band_keys(sketch)):
                    self._buckets[band].setdefault(key, []).append((text_id, start))
                    self.stats.index_entries += 1
        self.stats.build_seconds += time.perf_counter() - begin
        return self

    def query(
        self, corpus: Corpus, query: np.ndarray, theta: float
    ) -> list[Span]:
        """Probe band buckets and verify candidates with exact Jaccard."""
        if not 0.0 < theta <= 1.0:
            raise InvalidParameterError(f"theta must be in (0, 1], got {theta}")
        begin = time.perf_counter()
        sketch = self.family.sketch(np.asarray(query))
        candidates: set[tuple[int, int]] = set()
        for band, key in enumerate(self._band_keys(sketch)):
            candidates.update(self._buckets[band].get(key, ()))
        results = []
        for text_id, start in sorted(candidates):
            self.stats.candidates_probed += 1
            window = np.asarray(corpus[text_id])[start : start + self.window]
            if distinct_jaccard(query, window) >= theta:
                results.append(Span(text_id, start, start + self.window - 1))
        self.stats.query_seconds += time.perf_counter() - begin
        return results

    @property
    def nbytes(self) -> int:
        """Approximate index size: band-key bytes plus bucket entries."""
        key_bytes = self.rows * 4
        return sum(
            len(bucket) * key_bytes + sum(len(v) for v in bucket.values()) * 8
            for bucket in self._buckets
        )
