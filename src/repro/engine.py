"""High-level facade: corpus + tokenizer + index + searcher in one object.

Everything in :mod:`repro` composes from small parts; this module is
the one-stop entry point a downstream user adopts:

>>> from repro.engine import NearDupEngine
>>> engine = NearDupEngine.from_texts(["some documents", ...], k=32, t=25)
>>> for hit in engine.search("a passage to look up", theta=0.8):
...     print(hit.text_id, hit.snippet)

The engine owns a BPE tokenizer (trained at build time), the tokenized
corpus, the inverted index, and a searcher; :meth:`save` / :meth:`load`
persist all of it as one directory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher, SearchResult
from repro.corpus.corpus import Corpus, InMemoryCorpus
from repro.corpus.store import DiskCorpus, write_corpus
from repro.exceptions import InvalidParameterError
from repro.index.builder import DEFAULT_BATCH_TEXTS, build_memory_index
from repro.index.codec import check_codec
from repro.index.lsm import LiveIndex, LiveIndexConfig, LiveSearcher, manifest_exists
from repro.index.storage import DiskInvertedIndex, write_index
from repro.tokenizer.bpe import BPETokenizer


def _build_index(
    corpus: Corpus,
    family: HashFamily,
    t: int,
    *,
    vocab_size: int | None,
    build_workers: int,
    batch_texts: int,
):
    if build_workers > 1:
        from repro.index.parallel import build_memory_index_parallel

        return build_memory_index_parallel(
            corpus,
            family,
            t,
            vocab_size=vocab_size,
            workers=build_workers,
            batch_texts=batch_texts,
        )
    return build_memory_index(
        corpus, family, t, vocab_size=vocab_size, batch_texts=batch_texts
    )

_META_FILE = "engine.meta.json"
_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Hit:
    """One merged near-duplicate region, decoded when possible."""

    text_id: int
    start: int
    end: int
    snippet: str | None

    @property
    def length(self) -> int:
        return self.end - self.start + 1


class NearDupEngine:
    """Build once, search with strings or token arrays.

    Construct via :meth:`from_texts` (raw strings; trains a tokenizer)
    or :meth:`from_corpus` (pre-tokenized).  The underlying parts stay
    reachable (``engine.index``, ``engine.searcher``, ``engine.corpus``,
    ``engine.tokenizer``) for anything the facade does not cover.
    """

    def __init__(
        self,
        corpus: Corpus | None,
        index,
        *,
        tokenizer: BPETokenizer | None = None,
        codec: str = "raw",
        backend: str = "static",
    ) -> None:
        if backend not in ("static", "live"):
            raise InvalidParameterError(
                f"backend must be 'static' or 'live', got {backend!r}"
            )
        if corpus is None and backend != "live":
            raise InvalidParameterError("a static engine requires a corpus")
        self.corpus = corpus
        self.index = index
        self.tokenizer = tokenizer
        #: ``static`` (immutable index) or ``live`` (streaming LSM index).
        self.backend = backend
        #: Payload codec :meth:`save` writes (``raw`` or ``packed``).
        self.codec = check_codec(codec)
        if backend == "live":
            self.searcher = LiveSearcher(index, corpus=corpus)
        else:
            self.searcher = NearDuplicateSearcher(index, corpus=corpus)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_texts(
        cls,
        texts: Iterable[str],
        *,
        k: int = 32,
        t: int = 25,
        vocab_size: int = 4096,
        seed: int = 0,
        build_workers: int = 1,
        batch_texts: int = DEFAULT_BATCH_TEXTS,
        codec: str = "raw",
    ) -> "NearDupEngine":
        """Train a BPE tokenizer on ``texts``, tokenize, and index.

        ``build_workers > 1`` generates the index on a process pool;
        the result is identical to the single-process build.
        ``codec="packed"`` makes :meth:`save` write the compressed
        format v2 index payload.
        """
        materialized = list(texts)
        if not materialized:
            raise InvalidParameterError("at least one text is required")
        tokenizer = BPETokenizer.train(materialized, vocab_size=vocab_size)
        corpus = InMemoryCorpus([tokenizer.encode(text) for text in materialized])
        family = HashFamily(k=k, seed=seed)
        index = _build_index(
            corpus,
            family,
            t,
            vocab_size=tokenizer.vocab_size,
            build_workers=build_workers,
            batch_texts=batch_texts,
        )
        return cls(corpus, index, tokenizer=tokenizer, codec=codec)

    @classmethod
    def from_corpus(
        cls,
        corpus: Corpus,
        *,
        k: int = 32,
        t: int = 25,
        vocab_size: int | None = None,
        seed: int = 0,
        tokenizer: BPETokenizer | None = None,
        build_workers: int = 1,
        batch_texts: int = DEFAULT_BATCH_TEXTS,
        codec: str = "raw",
    ) -> "NearDupEngine":
        """Index a pre-tokenized corpus (token-id queries only, unless a
        tokenizer is supplied).  ``build_workers > 1`` generates the
        index on a process pool; the result is identical.
        ``codec="packed"`` makes :meth:`save` write the compressed
        format v2 index payload."""
        family = HashFamily(k=k, seed=seed)
        index = _build_index(
            corpus,
            family,
            t,
            vocab_size=vocab_size,
            build_workers=build_workers,
            batch_texts=batch_texts,
        )
        return cls(corpus, index, tokenizer=tokenizer, codec=codec)

    @classmethod
    def live(
        cls,
        root: str | Path,
        *,
        k: int = 32,
        t: int = 25,
        vocab_size: int = 4096,
        seed: int = 0,
        tokenizer: BPETokenizer | None = None,
        config: LiveIndexConfig | None = None,
    ) -> "NearDupEngine":
        """Open (or create) a streaming engine over an LSM live index.

        A live engine accepts :meth:`append_texts` while answering
        queries; appends are WAL-durable and the visible index advances
        through sealed runs and background compaction (see
        :mod:`repro.index.lsm`).  When ``root`` already holds a live
        index, ``k``/``t``/``vocab_size``/``seed`` are validated against
        it rather than applied.
        """
        root = Path(root)
        if manifest_exists(root):
            live_index = LiveIndex(root, config=config)
        else:
            live_index = LiveIndex(
                root,
                family=HashFamily(k=k, seed=seed),
                t=t,
                vocab_size=vocab_size,
                config=config,
            )
        codec = live_index.manifest.codec
        return cls(
            None, live_index, tokenizer=tokenizer, codec=codec, backend="live"
        )

    # ------------------------------------------------------------------
    # Streaming ingest (live backend)
    # ------------------------------------------------------------------
    @property
    def live_index(self) -> LiveIndex:
        """The underlying :class:`LiveIndex` (live backend only)."""
        if self.backend != "live":
            raise InvalidParameterError("engine was not opened with backend='live'")
        return self.index

    def append_texts(
        self, texts: Sequence[str | Sequence[int] | np.ndarray]
    ) -> list[int | None]:
        """Ingest a batch into a live engine; returns assigned text ids
        (``None`` marks a text the dedup prefilter skipped).  Durable
        under the live index's ``ack_policy`` when this returns."""
        live_index = self.live_index
        return live_index.append_texts([self._as_tokens(text) for text in texts])

    def append_text(self, text: str | Sequence[int] | np.ndarray) -> int | None:
        """Ingest one text into a live engine; returns its id."""
        return self.append_texts([text])[0]

    def close(self) -> None:
        """Release live-backend resources (no-op for static engines)."""
        if self.backend == "live":
            self.index.close()

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _as_tokens(self, query: str | Sequence[int] | np.ndarray) -> np.ndarray:
        if isinstance(query, str):
            if self.tokenizer is None:
                raise InvalidParameterError(
                    "string queries need a tokenizer; build with from_texts "
                    "or pass tokenizer= explicitly"
                )
            return self.tokenizer.encode(query)
        return np.asarray(query, dtype=np.uint32)

    def search(
        self,
        query: str | Sequence[int] | np.ndarray,
        theta: float = 0.8,
        *,
        verify: bool = False,
        snippet_tokens: int = 40,
    ) -> list[Hit]:
        """Find near-duplicate regions; returns merged, decoded hits."""
        result = self.searcher.search(self._as_tokens(query), theta, verify=verify)
        return self._to_hits(result, snippet_tokens)

    def search_raw(
        self, query: str | Sequence[int] | np.ndarray, theta: float = 0.8, **kwargs
    ) -> SearchResult:
        """The full :class:`SearchResult` for callers that need rectangles."""
        return self.searcher.search(self._as_tokens(query), theta, **kwargs)

    def search_batch(
        self,
        queries: Sequence[str | Sequence[int] | np.ndarray],
        theta: float = 0.8,
        *,
        workers: int = 0,
        batch_size: int | None = None,
        verify: bool = False,
        snippet_tokens: int = 40,
    ) -> list[list[Hit]]:
        """Answer many queries in one planned, I/O-shared pass.

        Returns one hit list per query, in input order — identical to
        calling :meth:`search` per query.  ``workers=0`` runs the
        sequential reference loop; ``workers=1`` plans the batch
        (sketch dedup + list pinning) on one thread; ``workers>=2``
        shards it across threads (in-memory index) or processes
        (on-disk index).
        """
        batch = self.search_batch_raw(
            queries,
            theta,
            workers=workers,
            batch_size=batch_size,
            verify=verify,
        )
        return [
            self._to_hits(result, snippet_tokens) for result in batch.results
        ]

    def search_batch_raw(
        self,
        queries: Sequence[str | Sequence[int] | np.ndarray],
        theta: float = 0.8,
        *,
        workers: int = 0,
        batch_size: int | None = None,
        **kwargs,
    ):
        """Batch counterpart of :meth:`search_raw`: the full
        :class:`~repro.query.results.BatchResult`, including the merged
        :class:`~repro.query.results.BatchStats`."""
        from repro.query.executor import BatchQueryExecutor

        tokenized = [self._as_tokens(query) for query in queries]
        with BatchQueryExecutor(
            self.searcher, workers=workers, batch_size=batch_size
        ) as executor:
            return executor.execute(tokenized, theta, **kwargs)

    # ------------------------------------------------------------------
    # Serving hooks
    # ------------------------------------------------------------------
    def cached_searcher(
        self,
        *,
        cache_bytes: int = 32 * 1024 * 1024,
        cache_policy: str = "lru",
        block_cache_bytes: int = 0,
        result_cache: bool | None = None,
        result_entries: int = 1024,
    ) -> NearDuplicateSearcher:
        """A searcher backed by the multi-tier read cache.

        The online service (and any other long-lived caller answering
        many queries) searches through one of these instead of
        ``engine.searcher``.  Tiers, outermost first:

        - *result cache* (``result_cache=True``): exact memoization of
          whole ``SearchResult``s, invalidated by the backend
          generation.  Defaults on for the live backend (where the
          generation gate gives it a correctness story) and off for
          static indexes.
        - *list cache*: the :class:`~repro.index.cache.CachedIndexReader`
          whole-list tier, with ``cache_policy`` choosing ``lru`` or
          scan-resistant ``tinylfu`` admission.
        - *decoded-block cache* (``block_cache_bytes > 0``): decoded
          posting blocks below the list tier, serving zone-map point
          reads without re-running the packed codec (packed payloads
          only; a no-op for raw/in-memory indexes).

        Each call builds fresh caches.
        """
        from repro.index.cache import CachedIndexReader

        if self.backend == "live":
            # The live searcher rebuilds its cache per generation, so
            # mutations never serve stale lists.
            searcher = LiveSearcher(
                self.index,
                cache_bytes=cache_bytes,
                cache_policy=cache_policy,
                block_cache_bytes=block_cache_bytes,
                corpus=self.corpus,
            )
            if result_cache or result_cache is None:
                from repro.query.resultcache import CachingSearcher

                live_index = self.index
                searcher = CachingSearcher(
                    searcher,
                    max_entries=result_entries,
                    generation_fn=lambda: live_index.generation,
                )
            return searcher
        if block_cache_bytes > 0 and hasattr(self.index, "enable_block_cache"):
            from repro.index.blockcache import DecodedBlockCache

            self.index.enable_block_cache(
                DecodedBlockCache(int(block_cache_bytes), policy=cache_policy)
            )
        reader = CachedIndexReader(
            self.index, capacity_bytes=cache_bytes, policy=cache_policy
        )
        searcher = NearDuplicateSearcher(reader, corpus=self.corpus)
        if result_cache:
            from repro.query.resultcache import CachingSearcher

            searcher = CachingSearcher(searcher, max_entries=result_entries)
        return searcher

    def warmup(
        self,
        searcher: NearDuplicateSearcher | None = None,
        *,
        max_lists: int = 64,
        max_bytes: int | None = None,
    ) -> int:
        """Preload the longest (Zipf-head) inverted lists into a cache.

        Ranks every list of every hash function by length and loads the
        head through ``searcher``'s cached reader until ``max_lists``
        lists or ``max_bytes`` (default: half the cache capacity) have
        been admitted, so a freshly started service answers its first
        queries against a warm cache.  Returns the number of lists
        loaded.  ``searcher`` must come from :meth:`cached_searcher`.
        """
        from repro.index.cache import CachedIndexReader
        from repro.index.inverted import POSTING_BYTES

        if searcher is None:
            searcher = self.cached_searcher()
        reader = searcher.index
        if not isinstance(reader, CachedIndexReader):
            raise InvalidParameterError(
                "warmup needs a cached searcher; use engine.cached_searcher()"
            )
        if max_lists <= 0:
            return 0
        budget = (
            int(max_bytes)
            if max_bytes is not None
            else reader.stats().capacity_bytes // 2
        )
        ranked: list[tuple[int, int, int]] = []
        for func in range(self.index.family.k):
            lengths = np.asarray(self.index.list_lengths(func))
            keys = np.asarray(self.index.list_keys(func))
            if lengths.size == 0:
                continue
            head = np.argsort(-lengths, kind="stable")[:max_lists]
            ranked.extend(
                (int(lengths[slot]), func, int(keys[slot])) for slot in head
            )
        ranked.sort(key=lambda item: (-item[0], item[1], item[2]))
        loaded = 0
        used = 0
        for length, func, minhash in ranked:
            if loaded >= max_lists:
                break
            nbytes = length * POSTING_BYTES
            if used + nbytes > budget:
                continue
            reader.load_list(func, minhash)
            used += nbytes
            loaded += 1
        return loaded

    def contains_near_duplicate(
        self, query: str | Sequence[int] | np.ndarray, theta: float = 0.8
    ) -> bool:
        """Fast existence check (early-exits on the first match)."""
        result = self.searcher.search(
            self._as_tokens(query), theta, first_match_only=True
        )
        return bool(result.matches)

    def _to_hits(self, result: SearchResult, snippet_tokens: int) -> list[Hit]:
        hits = []
        for span in result.merged_spans():
            snippet = None
            if self.tokenizer is not None and self.corpus is not None:
                tokens = np.asarray(self.corpus[span.text_id])[
                    span.start : span.start + min(span.length, snippet_tokens)
                ]
                snippet = self.tokenizer.decode(tokens)
            hits.append(
                Hit(
                    text_id=span.text_id,
                    start=span.start,
                    end=span.end,
                    snippet=snippet,
                )
            )
        return hits

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> Path:
        """Persist corpus, index, and tokenizer as one directory."""
        if self.backend == "live":
            raise InvalidParameterError(
                "a live engine persists itself through its root directory; "
                "save() applies only to static engines"
            )
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        write_corpus(self.corpus, directory / "corpus")
        if hasattr(self.index, "iter_lists"):
            write_index(self.index, directory / "index", codec=self.codec)
        else:  # already an on-disk reader: materialize a copy
            write_index(self.index.to_memory(), directory / "index", codec=self.codec)
        meta = {"format_version": _FORMAT_VERSION, "has_tokenizer": False}
        if self.tokenizer is not None:
            self.tokenizer.save(directory / "tokenizer.json")
            meta["has_tokenizer"] = True
        (directory / _META_FILE).write_text(json.dumps(meta))
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> "NearDupEngine":
        """Re-open an engine saved by :meth:`save` (memory-mapped)."""
        directory = Path(directory)
        meta_path = directory / _META_FILE
        if not meta_path.exists():
            raise InvalidParameterError(f"{directory} is not a saved engine")
        meta = json.loads(meta_path.read_text())
        if meta.get("format_version") != _FORMAT_VERSION:
            raise InvalidParameterError(
                f"unsupported engine format {meta.get('format_version')!r}"
            )
        corpus = DiskCorpus(directory / "corpus")
        index = DiskInvertedIndex(directory / "index")
        tokenizer = None
        if meta.get("has_tokenizer"):
            tokenizer = BPETokenizer.load(directory / "tokenizer.json")
        return cls(corpus, index, tokenizer=tokenizer, codec=index.codec)

    # ------------------------------------------------------------------
    @property
    def num_texts(self) -> int:
        if self.corpus is None:
            return int(self.index.num_texts)
        return len(self.corpus)

    @property
    def total_tokens(self) -> int:
        if self.corpus is None:
            return int(self.index.total_tokens)
        return self.corpus.total_tokens

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NearDupEngine(texts={self.num_texts}, tokens={self.total_tokens}, "
            f"k={self.index.family.k}, t={self.index.t})"
        )
