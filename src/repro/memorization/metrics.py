"""Quality metrics for the approximate search (recall/precision studies).

Definition 2 trades exactness for speed: a sequence with true Jaccard
``J`` is reported with probability ``P[Binomial(k, J) >= ceil(k θ)]``.
These helpers measure the realized trade-off on a concrete corpus:

* :func:`approximation_quality` — precision/recall of the indexed
  searcher against the exact Definition 1 answer set (brute force, so
  test-scale corpora only);
* :func:`recall_curve` — measured recall as a function of ``k``,
  alongside the binomial model, for choosing ``k`` in deployments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.bruteforce import search_exact
from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.core.theory import recall_estimate
from repro.core.verify import Span
from repro.corpus.corpus import Corpus
from repro.index.builder import build_memory_index


@dataclass(frozen=True)
class QualityReport:
    """Precision/recall of the approximate searcher vs exact ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def _result_spans(result) -> set[tuple[int, int, int]]:
    return {
        (m.text_id, i, j)
        for m in result.matches
        for rect in m.rectangles
        for (i, j) in rect.iter_spans(result.t)
    }


def approximation_quality(
    corpus: Corpus,
    searcher: NearDuplicateSearcher,
    queries: list[np.ndarray],
    theta: float,
) -> QualityReport:
    """Compare the searcher's output to the exact Definition 1 answers.

    Quadratic in text lengths (exact enumeration) — reserve for small
    corpora.  Note the two definitions legitimately disagree on
    borderline sequences; that disagreement is exactly what this
    measures.
    """
    tp = fp = fn = 0
    for query in queries:
        exact = {
            (s.text_id, s.start, s.end)
            for s in search_exact(corpus, query, theta, searcher.t)
        }
        approx = _result_spans(searcher.search(query, theta))
        tp += len(exact & approx)
        fp += len(approx - exact)
        fn += len(exact - approx)
    return QualityReport(true_positives=tp, false_positives=fp, false_negatives=fn)


def recall_curve(
    corpus: Corpus,
    pairs: list[tuple[np.ndarray, Span]],
    theta: float,
    t: int,
    *,
    k_values: tuple[int, ...] = (8, 16, 32, 64),
    seed: int = 0,
    vocab_size: int | None = None,
) -> list[dict]:
    """Measured vs modeled recall on known (query, target-span) pairs.

    For each ``k``, builds an index and checks how often the known
    target text is retrieved, next to the binomial prediction at the
    pairs' mean true similarity.
    """
    from repro.core.verify import distinct_jaccard

    similarities = []
    for query, span in pairs:
        target = np.asarray(corpus[span.text_id])[span.start : span.end + 1]
        similarities.append(distinct_jaccard(query, target))
    mean_similarity = float(np.mean(similarities)) if similarities else 0.0

    rows = []
    for k in k_values:
        family = HashFamily(k=k, seed=seed)
        index = build_memory_index(corpus, family, t=t, vocab_size=vocab_size)
        searcher = NearDuplicateSearcher(index)
        hits = 0
        for query, span in pairs:
            result = searcher.search(query, theta)
            if any(m.text_id == span.text_id for m in result.matches):
                hits += 1
        rows.append(
            {
                "k": k,
                "measured_recall": hits / len(pairs) if pairs else 1.0,
                "modeled_recall": recall_estimate(k, theta, mean_similarity),
                "mean_similarity": mean_similarity,
            }
        )
    return rows
