"""Full Figure-4 sweep runner.

Section 5's evaluation is a grid: models × similarity thresholds ×
window widths.  This module runs the whole grid from one call, reusing
each model's generations across thresholds and widths (generation is
the expensive part and is identical across those axes), which is how
the paper's numbers would actually be produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.search import NearDuplicateSearcher
from repro.corpus.corpus import Corpus
from repro.exceptions import InvalidParameterError
from repro.lm.generation import GenerationConfig, generate
from repro.lm.models import train_zoo
from repro.memorization.evaluator import (
    MemorizationReport,
    QueryOutcome,
    sliding_queries,
)


@dataclass(frozen=True)
class SweepConfig:
    """The grid of Section 5 (defaults mirror the paper's settings)."""

    model_names: tuple[str, ...] = ("small", "medium", "large", "xl")
    thetas: tuple[float, ...] = (1.0, 0.9, 0.8)
    window_widths: tuple[int, ...] = (32, 64, 128)
    num_texts: int = 4
    text_length: int = 256
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.model_names:
            raise InvalidParameterError("at least one model is required")
        if not self.thetas or not self.window_widths:
            raise InvalidParameterError("thetas and window_widths must be non-empty")
        if self.num_texts < 1 or self.text_length < 1:
            raise InvalidParameterError("num_texts and text_length must be >= 1")


@dataclass
class SweepResult:
    """All reports of one grid run, with convenience accessors."""

    reports: list[MemorizationReport] = field(default_factory=list)

    def get(self, model: str, theta: float, width: int) -> MemorizationReport:
        for report in self.reports:
            if (
                report.model_name == model
                and report.theta == theta
                and report.window_width == width
            ):
                return report
        raise KeyError((model, theta, width))

    def theta_series(self, model: str, width: int) -> list[tuple[float, float]]:
        """(theta, memorized_fraction) pairs — one Figure 4(a/c) line."""
        return sorted(
            (r.theta, r.memorized_fraction)
            for r in self.reports
            if r.model_name == model and r.window_width == width
        )

    def width_series(self, model: str, theta: float) -> list[tuple[int, float]]:
        """(width, memorized_fraction) pairs — one Figure 4(b/d) line."""
        return sorted(
            (r.window_width, r.memorized_fraction)
            for r in self.reports
            if r.model_name == model and r.theta == theta
        )

    def capacity_series(self, theta: float, width: int) -> list[tuple[str, float]]:
        """(model, fraction) in report order — the capacity axis."""
        return [
            (r.model_name, r.memorized_fraction)
            for r in self.reports
            if r.theta == theta and r.window_width == width
        ]


def run_figure4_sweep(
    corpus: Corpus,
    searcher: NearDuplicateSearcher,
    config: SweepConfig | None = None,
    *,
    vocab_size: int | None = None,
    generation: GenerationConfig | None = None,
    workers: int = 0,
    batch_size: int | None = None,
) -> SweepResult:
    """Train the zoo, generate once per model, evaluate the whole grid.

    All windows of one (model, width) cell form one query batch run
    through the batch executor; one batched pass at the loosest theta
    answers every theta at once (rectangles carry exact collision
    counts).  ``workers`` and ``batch_size`` are forwarded to
    :class:`~repro.query.executor.BatchQueryExecutor`.
    """
    from repro.query.executor import BatchQueryExecutor

    if config is None:
        config = SweepConfig()
    if generation is None:
        generation = GenerationConfig(strategy="top_k", top_k=50)
    zoo = train_zoo(corpus, list(config.model_names), vocab_size=vocab_size)
    executor = BatchQueryExecutor(
        searcher, workers=workers, batch_size=batch_size
    )
    with executor:
        return _run_sweep(executor, zoo, config, generation)


def _run_sweep(executor, zoo, config, generation) -> "SweepResult":
    result = SweepResult()
    thetas = list(config.thetas)
    for tier in zoo:
        texts = [
            generate(
                tier.model,
                config.text_length,
                config=generation,
                seed=config.seed + offset,
            )
            for offset in range(config.num_texts)
        ]
        for width in config.window_widths:
            reports = {
                theta: MemorizationReport(
                    model_name=tier.name, theta=theta, window_width=width
                )
                for theta in thetas
            }
            positions: list[tuple[int, int]] = []
            queries: list[np.ndarray] = []
            for text_index, text in enumerate(texts):
                for window_index, query in enumerate(sliding_queries(text, width)):
                    positions.append((text_index, window_index))
                    queries.append(query)
            per_query, _ = executor.execute_thetas(queries, thetas)
            for (text_index, window_index), query, per_theta in zip(
                positions, queries, per_query
            ):
                for theta in thetas:
                    outcome = per_theta[theta]
                    reports[theta].outcomes.append(
                        QueryOutcome(
                            generated_text=text_index,
                            window_index=window_index,
                            query=np.asarray(query),
                            matched=bool(outcome.matches),
                            num_texts=outcome.num_texts,
                            example=None,
                        )
                    )
            result.reports.extend(reports[theta] for theta in thetas)
    return result
