"""LLM memorization evaluation (paper Section 5).

Protocol, exactly as the paper describes it:

1. generate unprompted texts with the language model (top-50 sampling
   in the paper's setting);
2. slice each generated text into consecutive non-overlapping windows
   of a fixed width ``x`` — ``T[i*x .. (i+1)*x - 1]`` — and use each
   window as a query sequence;
3. run near-duplicate sequence search against the training corpus for
   every query;
4. report the fraction of query sequences that have at least one
   near-duplicate in the training corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.search import NearDuplicateSearcher
from repro.core.verify import Span
from repro.exceptions import InvalidParameterError
from repro.lm.generation import GenerationConfig, generate
from repro.lm.ngram import NGramLM


@dataclass(frozen=True)
class QueryOutcome:
    """Result of one sliding-window query."""

    generated_text: int
    window_index: int
    query: np.ndarray
    matched: bool
    num_texts: int
    example: Span | None


@dataclass
class MemorizationReport:
    """Aggregate of one memorization evaluation run."""

    model_name: str
    theta: float
    window_width: int
    outcomes: list[QueryOutcome] = field(default_factory=list)

    @property
    def num_queries(self) -> int:
        return len(self.outcomes)

    @property
    def num_memorized(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.matched)

    @property
    def memorized_fraction(self) -> float:
        """The paper's headline metric: fraction of queries with a near-duplicate."""
        if not self.outcomes:
            return 0.0
        return self.num_memorized / self.num_queries

    def examples(self, limit: int = 5) -> list[QueryOutcome]:
        """Matched outcomes for Table-1-style reporting."""
        matched = [outcome for outcome in self.outcomes if outcome.matched]
        return matched[:limit]


def sliding_queries(text: np.ndarray, width: int) -> list[np.ndarray]:
    """Consecutive non-overlapping width-``x`` windows of a generated text.

    Matches the paper's ``T[i*x + 1, (i+1)*x]`` slicing: the trailing
    partial window is discarded.
    """
    if width < 1:
        raise InvalidParameterError(f"width must be >= 1, got {width}")
    text = np.asarray(text)
    count = text.size // width
    return [text[i * width : (i + 1) * width] for i in range(count)]


def evaluate_generated_texts(
    texts: list[np.ndarray],
    searcher: NearDuplicateSearcher,
    theta: float,
    window_width: int,
    *,
    model_name: str = "model",
    keep_examples: bool = True,
    workers: int = 0,
    batch_size: int | None = None,
) -> MemorizationReport:
    """Run the sliding-window protocol over pre-generated texts.

    All windows of all texts form one query batch fed through
    :meth:`~repro.core.search.NearDuplicateSearcher.search_many`, so the
    Zipf-head inverted lists are read once per batch instead of once per
    query; ``workers >= 2`` additionally parallelizes the batch.
    ``workers=0`` keeps the exact sequential semantics.
    """
    report = MemorizationReport(
        model_name=model_name, theta=theta, window_width=window_width
    )
    positions: list[tuple[int, int]] = []
    queries: list[np.ndarray] = []
    for text_index, text in enumerate(texts):
        for window_index, query in enumerate(sliding_queries(text, window_width)):
            positions.append((text_index, window_index))
            queries.append(query)
    results = searcher.search_many(
        queries,
        theta,
        first_match_only=not keep_examples,
        workers=workers,
        batch_size=batch_size,
    )
    for (text_index, window_index), query, result in zip(
        positions, queries, results
    ):
        example = None
        if keep_examples and result.matches:
            merged = result.merged_spans()
            if merged:
                example = merged[0]
        report.outcomes.append(
            QueryOutcome(
                generated_text=text_index,
                window_index=window_index,
                query=np.asarray(query),
                matched=bool(result.matches),
                num_texts=result.num_texts,
                example=example,
            )
        )
    return report


def evaluate_model(
    model: NGramLM,
    searcher: NearDuplicateSearcher,
    theta: float,
    *,
    num_texts: int = 10,
    text_length: int = 512,
    window_width: int = 32,
    generation: GenerationConfig | None = None,
    model_name: str = "model",
    seed: int = 0,
    workers: int = 0,
    batch_size: int | None = None,
) -> MemorizationReport:
    """End-to-end Section 5 evaluation: generate, slice, search, report.

    The paper generates texts longer than 512 tokens with top-50
    sampling and no prompt; those are the defaults here.
    """
    if generation is None:
        generation = GenerationConfig(strategy="top_k", top_k=50)
    texts = [
        generate(model, text_length, config=generation, seed=seed + offset)
        for offset in range(num_texts)
    ]
    return evaluate_generated_texts(
        texts,
        searcher,
        theta,
        window_width,
        model_name=model_name,
        workers=workers,
        batch_size=batch_size,
    )
