"""Formatting of memorization results: Figure-4 series and Table-1 rows."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.corpus import Corpus
from repro.memorization.evaluator import MemorizationReport


@dataclass(frozen=True)
class Table1Row:
    """One generated query and a near-duplicate found in the corpus."""

    model_name: str
    query_tokens: np.ndarray
    match_text: int
    match_start: int
    match_end: int
    match_tokens: np.ndarray

    def render(self, tokenizer=None) -> str:
        """Human-readable row; decodes tokens when a tokenizer is given."""
        if tokenizer is not None:
            query = tokenizer.decode(self.query_tokens)
            match = tokenizer.decode(self.match_tokens)
        else:
            query = " ".join(str(t) for t in self.query_tokens.tolist())
            match = " ".join(str(t) for t in self.match_tokens.tolist())
        return (
            f"[{self.model_name}] generated: {query!s}\n"
            f"  near-duplicate (text {self.match_text}, "
            f"tokens {self.match_start}..{self.match_end}): {match!s}"
        )


def table1_rows(
    report: MemorizationReport, corpus: Corpus, limit: int = 5
) -> list[Table1Row]:
    """Extract example (generated, near-duplicate) pairs from a report."""
    rows = []
    for outcome in report.examples(limit):
        span = outcome.example
        if span is None:
            continue
        match_tokens = np.asarray(corpus[span.text_id])[span.start : span.end + 1]
        rows.append(
            Table1Row(
                model_name=report.model_name,
                query_tokens=outcome.query,
                match_text=span.text_id,
                match_start=span.start,
                match_end=span.end,
                match_tokens=match_tokens,
            )
        )
    return rows


def figure4_series(reports: list[MemorizationReport]) -> list[dict]:
    """Rows of (model, theta, window, fraction) for the Figure-4 plots."""
    return [
        {
            "model": report.model_name,
            "theta": report.theta,
            "window_width": report.window_width,
            "num_queries": report.num_queries,
            "memorized_fraction": report.memorized_fraction,
        }
        for report in reports
    ]


def format_series_table(rows: list[dict]) -> str:
    """Fixed-width text table of :func:`figure4_series` rows."""
    header = f"{'model':>8} {'theta':>6} {'x':>5} {'queries':>8} {'memorized%':>11}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['model']:>8} {row['theta']:>6.2f} {row['window_width']:>5d} "
            f"{row['num_queries']:>8d} {100.0 * row['memorized_fraction']:>10.2f}%"
        )
    return "\n".join(lines)
