"""Memorization evaluation harness (paper Section 5)."""

from repro.memorization.evaluator import (
    MemorizationReport,
    QueryOutcome,
    evaluate_generated_texts,
    evaluate_model,
    sliding_queries,
)
from repro.memorization.extraction import (
    ExtractionCandidate,
    ExtractionReport,
    run_extraction_attack,
)
from repro.memorization.metrics import (
    QualityReport,
    approximation_quality,
    recall_curve,
)
from repro.memorization.report import (
    Table1Row,
    figure4_series,
    format_series_table,
    table1_rows,
)
from repro.memorization.sweep import SweepConfig, SweepResult, run_figure4_sweep

__all__ = [
    "ExtractionCandidate",
    "ExtractionReport",
    "MemorizationReport",
    "run_extraction_attack",
    "QualityReport",
    "QueryOutcome",
    "SweepConfig",
    "SweepResult",
    "Table1Row",
    "run_figure4_sweep",
    "approximation_quality",
    "recall_curve",
    "evaluate_generated_texts",
    "evaluate_model",
    "figure4_series",
    "format_series_table",
    "sliding_queries",
    "table1_rows",
]
