"""Training-data extraction attack simulation (paper Section 6).

The paper motivates near-duplicate search with the privacy risks of
memorization: Carlini et al.'s *training data extraction attack*
generates many samples from a model, ranks them by how "memorized" they
look, and inspects the top of the ranking.  The near-duplicate engine
is exactly the missing evaluation tool: instead of eyeballing, we can
*measure* how many top-ranked samples truly appear (approximately) in
the training corpus.

Membership scores implemented:

* ``perplexity`` — low model perplexity suggests memorization;
* ``ratio`` — perplexity of the attacked model divided by that of a
  smaller reference model (the attack's best-performing signal in the
  literature: sequences the big model finds uniquely easy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.search import NearDuplicateSearcher
from repro.exceptions import InvalidParameterError
from repro.lm.generation import GenerationConfig, generate
from repro.lm.ngram import NGramLM


@dataclass(frozen=True)
class ExtractionCandidate:
    """One generated sample with its membership score and verdict."""

    sample_index: int
    tokens: np.ndarray
    score: float
    memorized: bool


@dataclass
class ExtractionReport:
    """Outcome of one simulated extraction attack."""

    theta: float
    score_kind: str
    candidates: list[ExtractionCandidate] = field(default_factory=list)

    def precision_at(self, k: int) -> float:
        """Fraction of the top-``k`` ranked samples that are memorized."""
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        top = self.candidates[:k]
        if not top:
            return 0.0
        return sum(c.memorized for c in top) / len(top)

    @property
    def base_rate(self) -> float:
        """Memorized fraction over all samples (the attack's baseline)."""
        if not self.candidates:
            return 0.0
        return sum(c.memorized for c in self.candidates) / len(self.candidates)

    @property
    def lift_at_10(self) -> float:
        """Precision@10 over base rate — how much ranking helps."""
        base = self.base_rate
        return self.precision_at(10) / base if base else 0.0


def run_extraction_attack(
    model: NGramLM,
    searcher: NearDuplicateSearcher,
    *,
    reference_model: NGramLM | None = None,
    num_samples: int = 50,
    sample_length: int = 64,
    theta: float = 0.8,
    generation: GenerationConfig | None = None,
    seed: int = 0,
) -> ExtractionReport:
    """Generate, rank by membership score, verify with the search engine.

    Parameters
    ----------
    model:
        The attacked model (trained on the indexed corpus).
    searcher:
        Near-duplicate searcher over the training corpus.
    reference_model:
        Enables the ``ratio`` score; without it, plain perplexity
        ranking is used.
    theta:
        Near-duplicate threshold defining "actually memorized".
    """
    if num_samples < 1:
        raise InvalidParameterError("num_samples must be >= 1")
    if sample_length < searcher.t:
        raise InvalidParameterError(
            f"sample_length ({sample_length}) must be >= the index threshold "
            f"({searcher.t}) or no match can ever be reported"
        )
    if generation is None:
        generation = GenerationConfig(strategy="top_k", top_k=50)
    score_kind = "ratio" if reference_model is not None else "perplexity"

    scored = []
    for sample_index in range(num_samples):
        tokens = generate(
            model, sample_length, config=generation, seed=seed + sample_index
        )
        perplexity = model.perplexity(tokens)
        if reference_model is not None:
            reference = reference_model.perplexity(tokens)
            score = perplexity / max(reference, 1e-9)
        else:
            score = perplexity
        scored.append((sample_index, tokens, score))

    # Lower score = more memorized-looking; verify each with the engine.
    scored.sort(key=lambda item: item[2])
    report = ExtractionReport(theta=theta, score_kind=score_kind)
    for sample_index, tokens, score in scored:
        result = searcher.search(tokens, theta, first_match_only=True)
        report.candidates.append(
            ExtractionCandidate(
                sample_index=sample_index,
                tokens=tokens,
                score=score,
                memorized=bool(result.matches),
            )
        )
    return report
