"""repro — near-duplicate sequence search at scale (SIGMOD 2023 reproduction).

A from-scratch Python implementation of the near-duplicate sequence
search system of Peng, Wang & Deng, *"Near-Duplicate Sequence Search at
Scale for Large Language Model Memorization Evaluation"* (SIGMOD 2023),
together with every substrate its evaluation depends on: a trainable
BPE tokenizer, synthetic Zipf corpora with planted duplicates, an
n-gram language-model zoo standing in for GPT-2/GPT-Neo, inverted-index
storage with out-of-core construction, baselines, and the memorization
evaluation harness of the paper's Section 5.

Quickstart
----------
>>> from repro import HashFamily, build_memory_index, NearDuplicateSearcher
>>> from repro.corpus import synthweb
>>> data = synthweb(num_texts=200, seed=7)
>>> family = HashFamily(k=16, seed=1)
>>> index = build_memory_index(data.corpus, family, t=25)
>>> searcher = NearDuplicateSearcher(index)
>>> result = searcher.search(data.corpus[0][:64], theta=0.8)
>>> result.num_texts >= 1
True
"""

from repro.core import (
    CompactWindow,
    HashFamily,
    NearDuplicateSearcher,
    SearchResult,
    Span,
    collision_count,
    distinct_jaccard,
    expected_window_count,
    generate_compact_windows,
    generate_compact_windows_stack,
    interval_scan,
    multiset_jaccard,
)
from repro.corpus import DiskCorpus, InMemoryCorpus, write_corpus
from repro.engine import Hit, NearDupEngine
from repro.index import (
    DiskInvertedIndex,
    MemoryInvertedIndex,
    build_external_index,
    build_memory_index,
    write_index,
)

__version__ = "1.0.0"

__all__ = [
    "CompactWindow",
    "DiskCorpus",
    "DiskInvertedIndex",
    "HashFamily",
    "Hit",
    "InMemoryCorpus",
    "MemoryInvertedIndex",
    "NearDupEngine",
    "NearDuplicateSearcher",
    "SearchResult",
    "Span",
    "__version__",
    "build_external_index",
    "build_memory_index",
    "collision_count",
    "distinct_jaccard",
    "expected_window_count",
    "generate_compact_windows",
    "generate_compact_windows_stack",
    "interval_scan",
    "multiset_jaccard",
    "write_corpus",
    "write_index",
]
