"""Command-line interface: ``repro-cli``.

Subcommands cover the full pipeline on synthetic data:

* ``synth``      — generate a synthetic corpus and write it to disk;
* ``build``      — build an inverted index over a corpus directory
  (in-memory or out-of-core);
* ``query``      — run one near-duplicate search and print the matches;
* ``stats``      — summarize an index (size, list-length skew);
* ``memorize``   — train an n-gram model tier and run the Section 5
  memorization evaluation;
* ``serve``      — run the online search service over a saved engine
  directory (asyncio HTTP, micro-batching, admission control);
* ``build-fleet`` — split a saved engine into per-shard engines plus a
  ``shardmap.json`` for the scatter-gather tier;
* ``serve-shards`` — launch one shard server per ``shard<i>/`` under a
  fleet root (each may prefork);
* ``route``      — run the scatter-gather router over a shard map;
* ``remote-query`` — query a running service or router from the
  command line.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.store import DiskCorpus, write_corpus
from repro.corpus.synthetic import minipile, synthweb
from repro.index.builder import build_and_write_index
from repro.index.external import ExternalBuildConfig, build_external_index
from repro.index.stats import IndexSummary, zipf_tail_report
from repro.index.storage import DiskInvertedIndex
from repro.lm.models import MODEL_ZOO, train_model
from repro.memorization.evaluator import evaluate_model
from repro.memorization.report import figure4_series, format_series_table


def _cmd_synth(args: argparse.Namespace) -> int:
    maker = synthweb if args.preset == "synthweb" else minipile
    data = maker(
        num_texts=args.texts,
        mean_length=args.mean_length,
        vocab_size=args.vocab,
        seed=args.seed,
    )
    write_corpus(data.corpus, args.out)
    print(
        f"wrote {args.preset} corpus: {len(data.corpus)} texts, "
        f"{data.corpus.total_tokens} tokens, {len(data.planted)} planted duplicates "
        f"-> {args.out}"
    )
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    corpus = DiskCorpus(args.corpus)
    family = HashFamily(k=args.k, seed=args.seed)
    if args.external:
        config = ExternalBuildConfig(
            batch_texts=args.batch_texts,
            memory_budget_bytes=args.memory_budget << 20,
            workers=max(1, args.build_workers),
            codec=args.codec,
            dir_format=args.dir_format,
        )
        stats = build_external_index(corpus, family, args.t, args.out, config=config)
    else:
        stats = build_and_write_index(
            corpus,
            family,
            args.t,
            args.out,
            workers=max(1, args.build_workers),
            batch_texts=args.batch_texts,
            codec=args.codec,
            dir_format=args.dir_format,
        )
    print(
        f"built index: {stats.windows_generated} compact windows, "
        f"generation {stats.generation_seconds:.2f}s, "
        f"merge {stats.merge_seconds + stats.aggregation_seconds:.2f}s, "
        f"io {stats.io_seconds:.2f}s -> {args.out}"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    index = DiskInvertedIndex(args.index)
    corpus = DiskCorpus(args.corpus)
    text = np.asarray(corpus[args.text])
    if args.start + args.length > text.size:
        print(
            f"error: query window [{args.start}, {args.start + args.length}) "
            f"exceeds text length {text.size}",
            file=sys.stderr,
        )
        return 2
    query = text[args.start : args.start + args.length]
    searcher = NearDuplicateSearcher(index)
    result = searcher.search(query, args.theta)
    print(
        f"theta={args.theta} beta={result.beta}: {result.num_texts} matching texts, "
        f"{result.count_spans()} sequences, "
        f"latency {result.stats.total_seconds * 1e3:.1f} ms "
        f"(io {result.stats.io_seconds * 1e3:.1f} ms, "
        f"{result.stats.io_bytes} bytes)"
    )
    for span in result.merged_spans()[: args.limit]:
        print(f"  text {span.text_id} tokens {span.start}..{span.end}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    index = DiskInvertedIndex(args.index)
    summary = IndexSummary.from_index(index)
    print(f"k={summary.k} t={summary.t}")
    print(f"postings={summary.num_postings} lists={summary.num_lists}")
    print(f"bytes={summary.nbytes}")
    print(
        f"list length: mean={summary.mean_list_length:.1f} "
        f"max={summary.max_list_length}"
    )
    print("longest lists (Zipf head):")
    for rank, length in zipf_tail_report(index, top=args.top):
        print(f"  #{rank}: {length} postings")
    return 0


def _cmd_batch_query(args: argparse.Namespace) -> int:
    """Run many queries from a file (one whitespace-separated token-id
    sequence per line) through the batch executor and print one summary
    row per query plus the aggregated batch statistics.

    Individual query failures (unparseable lines, per-query search
    errors) do not abort the run: each failed query is reported with an
    ``error`` field (JSON mode) or on stderr (table mode), the
    remaining queries still execute, and the exit code is 2 when any
    query failed."""
    import dataclasses

    index = DiskInvertedIndex(args.index)
    from repro.index.cache import CachedIndexReader
    from repro.query.executor import BatchQueryExecutor

    reader = (
        CachedIndexReader(index, policy=args.cache_policy)
        if args.cache
        else index
    )
    searcher = NearDuplicateSearcher(reader)
    with open(args.queries) as handle:
        lines = [line.strip() for line in handle if line.strip()]
    records: list[dict] = []
    valid: list[tuple[int, np.ndarray]] = []
    for number, line in enumerate(lines):
        record = {
            "query": number,
            "tokens": None,
            "matches": None,
            "spans": None,
            "latency_ms": None,
            "error": None,
        }
        try:
            tokens = np.asarray([int(part) for part in line.split()], dtype=np.uint32)
            if tokens.size == 0:
                raise ValueError("empty sequence")
            record["tokens"] = int(tokens.size)
            valid.append((number, tokens))
        except (ValueError, OverflowError):
            record["error"] = f"line {number + 1} is not a token-id sequence"
        records.append(record)
    executor = BatchQueryExecutor(
        searcher,
        workers=args.workers,
        batch_size=args.batch_size,
        cache_policy=args.cache_policy,
    )
    batch = None
    if valid:
        try:
            with executor:
                batch = executor.execute(
                    [tokens for _, tokens in valid], args.theta
                )
        except Exception as exc:  # noqa: BLE001 - reported per query below
            for number, _ in valid:
                records[number]["error"] = f"search failed: {exc}"
        else:
            for (number, _), result in zip(valid, batch.results):
                records[number]["matches"] = result.num_texts
                records[number]["spans"] = [
                    [span.text_id, span.start, span.end]
                    for span in result.merged_spans()
                ]
                records[number]["latency_ms"] = 1e3 * result.stats.total_seconds
    failed = sum(1 for record in records if record["error"] is not None)
    if args.json:
        payload = {
            "theta": args.theta,
            "queries": records,
            "failed": failed,
            "stats": dataclasses.asdict(batch.stats) if batch is not None else None,
        }
        if args.cache:
            payload["cache"] = reader.stats().to_dict()
        print(json.dumps(payload, indent=2))
        for record in records:
            if record["error"] is not None:
                print(f"error: {record['error']}", file=sys.stderr)
        return 2 if failed else 0
    print(f"{'query':>6} {'tokens':>7} {'matches':>8} {'latency_ms':>11}")
    for record in records:
        if record["error"] is not None:
            print(f"{record['query']:>6} {'-':>7} {'-':>8} {'-':>11}  ERROR")
            print(f"error: {record['error']}", file=sys.stderr)
            continue
        print(
            f"{record['query']:>6} {record['tokens']:>7} {record['matches']:>8} "
            f"{record['latency_ms']:>11.2f}"
        )
    if batch is not None:
        print(batch.stats.format())
    if args.cache:
        print(f"cache hit rate: {reader.hit_rate:.0%}")
    return 2 if failed else 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.index.lsm import manifest_exists
    from repro.index.validate import validate_index, validate_live_index

    if manifest_exists(args.index):
        report = validate_live_index(args.index, max_lists_per_func=args.max_lists)
        kind = "live index"
    else:
        index = DiskInvertedIndex(args.index)
        corpus = DiskCorpus(args.corpus) if args.corpus else None
        report = validate_index(index, corpus, max_lists_per_func=args.max_lists)
        kind = "index"
    print(
        f"checked {report.lists_checked} lists / {report.postings_checked} postings"
    )
    if report.ok:
        print(f"{kind} OK")
        return 0
    for error in report.errors:
        print(f"ERROR: {error}", file=sys.stderr)
    return 1


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.corpus.textfile import ingest_directory

    report = ingest_directory(
        args.input, args.out, pattern=args.pattern, vocab_size=args.vocab
    )
    print(
        f"ingested {report.num_texts} files: {report.total_tokens} tokens, "
        f"BPE vocab {report.vocab_size} -> {report.corpus_dir} "
        f"(tokenizer: {report.tokenizer_path})"
    )
    return 0


def _cmd_live_ingest(args: argparse.Namespace) -> int:
    import time

    from repro.core.hashing import HashFamily
    from repro.index.lsm import LiveIndex, LiveIndexConfig, manifest_exists

    config = LiveIndexConfig(
        seal_threshold_postings=args.seal_postings,
        codec=args.codec,
        ack_policy=args.ack_policy,
        fsync_batch=args.fsync_batch,
        compact_fanout=args.fanout,
        background_compaction=not args.no_compaction,
        dedupe=args.dedupe,
    )
    if manifest_exists(args.root):
        live = LiveIndex(args.root, config=config)
    else:
        live = LiveIndex(
            args.root,
            family=HashFamily(k=args.k, seed=args.seed),
            t=args.t,
            vocab_size=args.vocab,
            config=config,
        )
    corpus = DiskCorpus(args.corpus)
    begin = time.perf_counter()
    appended = deduped = tokens = 0
    with live:
        batch: list = []
        for text in corpus:
            batch.append(text)
            if len(batch) >= args.batch:
                ids = live.append_texts(batch)
                appended += sum(1 for i in ids if i is not None)
                deduped += sum(1 for i in ids if i is None)
                tokens += sum(int(t.size) for t in batch)
                batch.clear()
        if batch:
            ids = live.append_texts(batch)
            appended += sum(1 for i in ids if i is not None)
            deduped += sum(1 for i in ids if i is None)
            tokens += sum(int(t.size) for t in batch)
        live.flush()
        elapsed = time.perf_counter() - begin
        status = live.status()
    rate = appended / elapsed if elapsed > 0 else float("inf")
    print(
        f"appended {appended} texts ({tokens} tokens, {deduped} deduped) "
        f"in {elapsed:.2f}s ({rate:.0f} texts/s, ack={args.ack_policy})"
    )
    print(
        f"live index: {status['next_text_id']} texts, "
        f"{len(status['runs'])} sealed runs, "
        f"{status['memtable_postings']} memtable postings, "
        f"{status['seals']} seals, {status['compactions']} compactions"
    )
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.index.lsm import LiveIndex, LiveIndexConfig

    config = LiveIndexConfig(
        background_compaction=False, compact_fanout=args.fanout
    )
    with LiveIndex(args.root, config=config) as live:
        before = live.runs
        if args.all:
            merged = live.compact(all_runs=True)
        else:
            merged = False
            while live.compact():
                merged = True
        after = live.runs
    if merged:
        print(f"compacted {len(before)} runs -> {len(after)}: {', '.join(after)}")
    else:
        print(f"nothing to compact ({len(before)} runs within policy)")
    return 0


def _cmd_dedup(args: argparse.Namespace) -> int:
    from repro.dedup.pipeline import find_duplicate_clusters

    corpus = DiskCorpus(args.corpus)
    index = DiskInvertedIndex(args.index)
    searcher = NearDuplicateSearcher(index)
    report = find_duplicate_clusters(
        corpus,
        searcher,
        theta=args.theta,
        window=args.window,
        max_probes=args.max_probes,
        workers=args.workers,
    )
    print(
        f"probed {report.probes} windows at theta={args.theta}: "
        f"{len(report.clusters)} duplicate clusters, "
        f"{report.duplicated_spans} occurrences, "
        f"{report.redundant_tokens} redundant tokens"
    )
    for cluster in report.clusters[: args.limit]:
        keep = cluster.representative
        print(
            f"  cluster size {cluster.size}: keep text {keep.text_id} "
            f"tokens {keep.start}..{keep.end}, drop "
            + ", ".join(
                f"text {s.text_id} [{s.start}..{s.end}]" for s in cluster.redundant()
            )
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.batch_workers,
        procs=args.workers,
        reuse_port=args.reuse_port,
        max_batch=args.max_batch,
        linger_ms=args.linger_ms,
        max_queue=args.max_queue,
        timeout_ms=args.timeout_ms,
        cache_bytes=args.cache_mb << 20,
        cache_policy=args.cache_policy,
        block_cache_bytes=args.block_cache_bytes,
        result_cache={"auto": None, "on": True, "off": False}[args.result_cache],
        warmup_lists=args.warmup_lists,
        theta=args.theta,
    )
    return serve(args.engine_dir, corpus_dir=args.corpus, config=config)


def _cmd_build_fleet(args: argparse.Namespace) -> int:
    from repro.engine import NearDupEngine
    from repro.service.router import build_shard_fleet

    engine = NearDupEngine.load(args.engine_dir)
    shard_map = build_shard_fleet(
        engine,
        args.out,
        num_shards=args.shards,
        host=args.host,
        base_port=args.base_port,
        replicas_per_shard=args.replicas,
    )
    print(
        f"wrote {len(shard_map)} shard engines ({shard_map.num_texts} texts, "
        f"{shard_map.num_replicas} replica endpoints) "
        f"and shardmap.json under {args.out}"
    )
    return 0


def _cmd_serve_shards(args: argparse.Namespace) -> int:
    from repro.service.router import serve_shards

    return serve_shards(
        args.fleet_dir,
        host=args.host,
        base_port=args.base_port,
        workers=args.batch_workers,
        procs=args.workers,
        replicas=args.replicas,
    )


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.service.router import RouterConfig, route

    config = RouterConfig(
        host=args.host,
        port=args.port,
        timeout_ms=args.timeout_ms,
        shard_timeout_ms=args.shard_timeout_ms,
        max_connections=args.max_connections,
        partial_results=not args.no_partial,
        policy=args.policy,
        hedge_after_ms=args.hedge_after_ms,
    )
    return route(args.shard_map, config=config)


def _cmd_remote_query(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient
    from repro.service.protocol import ServiceError

    if (args.tokens is None) == (args.text is None):
        print("error: provide exactly one of --tokens or --text", file=sys.stderr)
        return 2
    if args.tokens is not None:
        try:
            query = [int(part) for part in args.tokens.split()]
        except ValueError:
            print("error: --tokens is not a token-id sequence", file=sys.stderr)
            return 2
    else:
        query = args.text
    with ServiceClient(args.host, args.port) as client:
        try:
            response = client.search(
                query,
                args.theta,
                verify=args.verify,
                timeout_ms=args.timeout_ms,
            )
        except ServiceError as exc:
            print(f"error: {exc} (HTTP {exc.status})", file=sys.stderr)
            return 1
    result = response["result"]
    server = response["server"]
    if "shards_asked" in server:  # answered by the scatter-gather router
        extra = f"{server['shards_answered']}/{server['shards_asked']} shards"
        if response.get("partial"):
            extra += " (PARTIAL)"
    else:
        extra = (
            f"queued {server['queue_ms']:.1f} ms, "
            f"batched with {server['batched_with']}"
        )
    print(
        f"theta={result['theta']} beta={result['beta']}: "
        f"{result['num_texts']} matching texts, {len(result['spans'])} regions, "
        f"latency {server['total_ms']:.1f} ms ({extra})"
    )
    for text_id, start, end in result["spans"][: args.limit]:
        print(f"  text {text_id} tokens {start}..{end}")
    return 0


def _cmd_memorize(args: argparse.Namespace) -> int:
    corpus = DiskCorpus(args.corpus).to_memory()
    index = DiskInvertedIndex(args.index)
    searcher = NearDuplicateSearcher(index)
    trained = train_model(args.model, corpus)
    report = evaluate_model(
        trained.model,
        searcher,
        args.theta,
        num_texts=args.texts,
        text_length=args.length,
        window_width=args.window,
        model_name=trained.name,
        seed=args.seed,
        workers=args.workers,
        batch_size=args.batch_size,
    )
    print(format_series_table(figure4_series([report])))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="Near-duplicate sequence search (SIGMOD 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_synth = sub.add_parser("synth", help="generate a synthetic corpus")
    p_synth.add_argument("out", help="output corpus directory")
    p_synth.add_argument("--preset", choices=["synthweb", "minipile"], default="synthweb")
    p_synth.add_argument("--texts", type=int, default=2000)
    p_synth.add_argument("--mean-length", type=int, default=300)
    p_synth.add_argument("--vocab", type=int, default=8192)
    p_synth.add_argument("--seed", type=int, default=0)
    p_synth.set_defaults(func=_cmd_synth)

    p_build = sub.add_parser("build", help="build an inverted index")
    p_build.add_argument("corpus", help="corpus directory")
    p_build.add_argument("out", help="index directory")
    p_build.add_argument("-k", type=int, default=32, help="number of hash functions")
    p_build.add_argument("-t", type=int, default=25, help="length threshold")
    p_build.add_argument("--seed", type=int, default=0, help="hash family seed")
    p_build.add_argument("--external", action="store_true", help="out-of-core build")
    p_build.add_argument("--batch-texts", type=int, default=256)
    p_build.add_argument("--memory-budget", type=int, default=64, help="MiB per partition")
    p_build.add_argument(
        "--build-workers",
        type=int,
        default=1,
        help="worker processes for window generation / partition aggregation "
        "(1 = single process)",
    )
    p_build.add_argument(
        "--codec",
        choices=["raw", "packed"],
        default="raw",
        help="payload codec: raw 16-byte postings (format v1) or "
        "delta + bit-packed blocks (format v2, ~3-5x smaller)",
    )
    p_build.add_argument(
        "--dir-format",
        choices=["sidecar", "npz"],
        default="sidecar",
        help="directory container: page-aligned mmap sidecar "
        "(zero-copy open) or the legacy zipped npz archive",
    )
    p_build.set_defaults(func=_cmd_build)

    p_query = sub.add_parser("query", help="run one near-duplicate search")
    p_query.add_argument("index", help="index directory")
    p_query.add_argument("corpus", help="corpus directory")
    p_query.add_argument("--text", type=int, default=0, help="query source text id")
    p_query.add_argument("--start", type=int, default=0)
    p_query.add_argument("--length", type=int, default=64)
    p_query.add_argument("--theta", type=float, default=0.8)
    p_query.add_argument("--limit", type=int, default=10, help="matches to print")
    p_query.set_defaults(func=_cmd_query)

    p_stats = sub.add_parser("stats", help="summarize an index")
    p_stats.add_argument("index", help="index directory")
    p_stats.add_argument("--top", type=int, default=10)
    p_stats.set_defaults(func=_cmd_stats)

    p_batch = sub.add_parser("batch-query", help="run queries from a file")
    p_batch.add_argument("index", help="index directory")
    p_batch.add_argument("queries", help="file with one token-id sequence per line")
    p_batch.add_argument("--theta", type=float, default=0.8)
    p_batch.add_argument("--cache", action="store_true", help="list cache")
    p_batch.add_argument(
        "--cache-policy",
        choices=("lru", "tinylfu"),
        default="lru",
        help="list-cache admission: plain LRU or scan-resistant W-TinyLFU",
    )
    p_batch.add_argument(
        "--workers",
        type=int,
        default=0,
        help="0 = sequential loop; 1 = planned batch; >= 2 = parallel shards",
    )
    p_batch.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="queries planned/executed per chunk (default: whole file)",
    )
    p_batch.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document (per-query records with an 'error' "
        "field, batch stats) instead of the table",
    )
    p_batch.set_defaults(func=_cmd_batch_query)

    p_val = sub.add_parser(
        "validate",
        help="check an index's (or live index root's) structural invariants",
    )
    p_val.add_argument("index", help="index directory or live index root")
    p_val.add_argument("--corpus", default=None, help="corpus directory (deep checks)")
    p_val.add_argument("--max-lists", type=int, default=None, help="sample cap per function")
    p_val.set_defaults(func=_cmd_validate)

    p_ingest = sub.add_parser("ingest", help="tokenize raw .txt files into a corpus")
    p_ingest.add_argument("input", help="directory of text files")
    p_ingest.add_argument("out", help="output directory (corpus + tokenizer)")
    p_ingest.add_argument("--pattern", default="*.txt")
    p_ingest.add_argument("--vocab", type=int, default=4096)
    p_ingest.set_defaults(func=_cmd_ingest)

    p_live = sub.add_parser(
        "live-ingest",
        help="stream a tokenized corpus into a WAL-backed live index root",
    )
    p_live.add_argument("root", help="live index root (created if missing)")
    p_live.add_argument("corpus", help="tokenized corpus directory to append")
    p_live.add_argument("--k", type=int, default=32, help="hash functions (new roots)")
    p_live.add_argument("--t", type=int, default=25, help="length threshold (new roots)")
    p_live.add_argument("--vocab", type=int, default=4096, help="vocab size (new roots)")
    p_live.add_argument("--seed", type=int, default=0, help="hash seed (new roots)")
    p_live.add_argument(
        "--seal-postings",
        type=int,
        default=1_000_000,
        help="memtable postings that trigger sealing a run",
    )
    p_live.add_argument(
        "--ack-policy",
        choices=("always", "batch", "none"),
        default="always",
        help="WAL durability per acknowledged append",
    )
    p_live.add_argument(
        "--fsync-batch",
        type=int,
        default=32,
        help="appends between fsyncs under --ack-policy batch",
    )
    p_live.add_argument("--codec", choices=("raw", "packed"), default="packed")
    p_live.add_argument(
        "--fanout", type=int, default=4, help="runs per tiered compaction"
    )
    p_live.add_argument(
        "--no-compaction",
        action="store_true",
        help="disable the background compaction thread",
    )
    p_live.add_argument(
        "--dedupe",
        action="store_true",
        help="Bloom-prefilter exact duplicates before the WAL (lossy: "
        "~fp-rate of distinct texts may be skipped)",
    )
    p_live.add_argument(
        "--batch", type=int, default=64, help="texts per append batch"
    )
    p_live.set_defaults(func=_cmd_live_ingest)

    p_compact = sub.add_parser(
        "compact", help="run compaction on a live index root"
    )
    p_compact.add_argument("root", help="live index root")
    p_compact.add_argument(
        "--all", action="store_true", help="merge every run into one"
    )
    p_compact.add_argument(
        "--fanout", type=int, default=4, help="runs per tiered merge"
    )
    p_compact.set_defaults(func=_cmd_compact)

    p_dedup = sub.add_parser("dedup", help="find near-duplicate clusters in a corpus")
    p_dedup.add_argument("index", help="index directory")
    p_dedup.add_argument("corpus", help="corpus directory")
    p_dedup.add_argument("--theta", type=float, default=0.8)
    p_dedup.add_argument("--window", type=int, default=64)
    p_dedup.add_argument("--max-probes", type=int, default=None)
    p_dedup.add_argument("--limit", type=int, default=10, help="clusters to print")
    p_dedup.add_argument("--workers", type=int, default=0, help="batch executor workers")
    p_dedup.set_defaults(func=_cmd_dedup)

    p_serve = sub.add_parser(
        "serve", help="run the online search service over a saved engine"
    )
    p_serve.add_argument(
        "engine_dir",
        help="engine directory (NearDupEngine.save), a live index root "
        "(serves with POST /ingest enabled), or a bare index directory "
        "(then pass --corpus)",
    )
    p_serve.add_argument(
        "--corpus",
        default=None,
        help="corpus directory when serving a bare index directory",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080, help="0 = ephemeral")
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="prefork server processes sharing one mmap index and one "
        "listening socket (1 = single in-process server)",
    )
    p_serve.add_argument(
        "--batch-workers",
        type=int,
        default=2,
        help="threads executing batches inside each server process",
    )
    p_serve.add_argument(
        "--reuse-port",
        action="store_true",
        help="per-worker SO_REUSEPORT sockets instead of one shared "
        "accept socket (kernel hash-balances connections)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=16, help="requests coalesced per batch"
    )
    p_serve.add_argument(
        "--linger-ms",
        type=float,
        default=8.0,
        help="max wait for more requests after the first of a batch",
    )
    p_serve.add_argument(
        "--max-queue",
        type=int,
        default=128,
        help="admission bound; beyond it requests are shed with HTTP 429",
    )
    p_serve.add_argument(
        "--timeout-ms",
        type=float,
        default=30000.0,
        help="default per-request deadline",
    )
    p_serve.add_argument(
        "--cache-mb", type=int, default=64, help="inverted-list cache budget"
    )
    p_serve.add_argument(
        "--cache-policy",
        choices=("lru", "tinylfu"),
        default="lru",
        help="list/block cache admission: plain LRU or scan-resistant W-TinyLFU",
    )
    p_serve.add_argument(
        "--block-cache-bytes",
        type=int,
        default=0,
        help="decoded-block cache budget for packed indexes (0 disables)",
    )
    p_serve.add_argument(
        "--result-cache",
        choices=("auto", "on", "off"),
        default="auto",
        help="whole-result memoization (auto: on for live indexes only)",
    )
    p_serve.add_argument(
        "--warmup-lists",
        type=int,
        default=64,
        help="Zipf-head lists preloaded at startup (0 disables)",
    )
    p_serve.add_argument(
        "--theta", type=float, default=0.8, help="default similarity threshold"
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_fleet = sub.add_parser(
        "build-fleet",
        help="split a saved engine into shard engines + shardmap.json",
    )
    p_fleet.add_argument("engine_dir", help="saved engine directory")
    p_fleet.add_argument("out", help="fleet root (shard<i>/ written here)")
    p_fleet.add_argument("--shards", type=int, default=4)
    p_fleet.add_argument("--host", default="127.0.0.1")
    p_fleet.add_argument(
        "--base-port",
        type=int,
        default=8101,
        help="replica r of shard i listens on base + i*replicas + r",
    )
    p_fleet.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="replica endpoints per shard in the emitted shardmap.json "
        "(they all serve the same shard<i>/ directory)",
    )
    p_fleet.set_defaults(func=_cmd_build_fleet)

    p_shards = sub.add_parser(
        "serve-shards",
        help="launch one shard server per shard<i>/ under a fleet root",
    )
    p_shards.add_argument("fleet_dir", help="directory holding shard<i>/ engines")
    p_shards.add_argument("--host", default="127.0.0.1")
    p_shards.add_argument(
        "--base-port",
        type=int,
        default=8101,
        help="replica r of shard i listens on base + i*replicas + r",
    )
    p_shards.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="server processes per shard (the shard map is grown to match)",
    )
    p_shards.add_argument(
        "--workers",
        type=int,
        default=1,
        help="prefork processes per shard server (1 = single process)",
    )
    p_shards.add_argument(
        "--batch-workers",
        type=int,
        default=2,
        help="batcher threads inside each shard process",
    )
    p_shards.set_defaults(func=_cmd_serve_shards)

    p_route = sub.add_parser(
        "route",
        help="run the scatter-gather router over a shard map",
    )
    p_route.add_argument(
        "shard_map", help="shardmap.json (or a directory containing one)"
    )
    p_route.add_argument("--host", default="127.0.0.1")
    p_route.add_argument("--port", type=int, default=8080, help="0 = ephemeral")
    p_route.add_argument(
        "--timeout-ms",
        type=float,
        default=30000.0,
        help="default end-to-end deadline per request",
    )
    p_route.add_argument(
        "--shard-timeout-ms",
        type=float,
        default=None,
        help="per-shard deadline cap (default: the whole request budget)",
    )
    p_route.add_argument(
        "--max-connections",
        type=int,
        default=16,
        help="pooled keep-alive connections per shard",
    )
    p_route.add_argument(
        "--no-partial",
        action="store_true",
        help="fail the whole request when any shard fails (default: answer "
        "from the healthy shards with partial=true)",
    )
    p_route.add_argument(
        "--policy",
        default="pick-first",
        choices=["pick-first", "round-robin", "power-of-two"],
        help="replica selection policy within each shard",
    )
    p_route.add_argument(
        "--hedge-after-ms",
        type=float,
        default=None,
        help="hedge sub-requests still unanswered after this many ms "
        "(0 = auto from each shard's observed p95; default: hedging off)",
    )
    p_route.set_defaults(func=_cmd_route)

    p_remote = sub.add_parser(
        "remote-query", help="query a running search service"
    )
    p_remote.add_argument("--host", default="127.0.0.1")
    p_remote.add_argument("--port", type=int, default=8080)
    p_remote.add_argument(
        "--tokens", default=None, help="whitespace-separated token ids"
    )
    p_remote.add_argument(
        "--text",
        default=None,
        help="raw string query (server-side tokenization)",
    )
    p_remote.add_argument("--theta", type=float, default=0.8)
    p_remote.add_argument("--verify", action="store_true")
    p_remote.add_argument("--timeout-ms", type=float, default=None)
    p_remote.add_argument("--limit", type=int, default=10, help="regions to print")
    p_remote.set_defaults(func=_cmd_remote_query)

    p_mem = sub.add_parser("memorize", help="Section 5 memorization evaluation")
    p_mem.add_argument("index", help="index directory")
    p_mem.add_argument("corpus", help="corpus directory")
    p_mem.add_argument("--model", choices=sorted(MODEL_ZOO), default="large")
    p_mem.add_argument("--theta", type=float, default=0.8)
    p_mem.add_argument("--texts", type=int, default=5)
    p_mem.add_argument("--length", type=int, default=512)
    p_mem.add_argument("--window", type=int, default=32)
    p_mem.add_argument("--seed", type=int, default=0)
    p_mem.add_argument("--workers", type=int, default=0, help="batch executor workers")
    p_mem.add_argument(
        "--batch-size", type=int, default=None, help="queries per executor chunk"
    )
    p_mem.set_defaults(func=_cmd_memorize)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
