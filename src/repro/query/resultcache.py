"""Generation-aware memoization of whole search results.

The memorization evaluation replays heavily repeated queries (the same
training prefixes probed again and again); for those, even a warm list
cache still pays sketching, candidate sweeps, and refinement.  This
tier memoizes the *entire* :class:`~repro.core.search.SearchResult`
keyed by ``(sketch digest, theta, params)`` — the same identity the
batch planner uses for its dedup, including the query tokens when
``verify=True`` (exact-Jaccard verification reads the raw query, so
sketch-identical queries may verify differently).

Correctness on a mutable index comes from **generation gating**: every
lookup compares the backend's current generation (for the LSM live
backend, ``(MANIFEST generation << 32) + memtable texts``) against the
generation the cache was filled under, and a moved generation drops
every entry before answering.  A result computed against generation G
is likewise never stored once the index has moved past G.  Static
indexes have one constant generation, so the gate is free — but the
tier is *disabled by default* for them in
:meth:`~repro.engine.NearDupEngine.cached_searcher`, because the batch
planner's sketch dedup plus list pinning already covers intra-batch
repeats; enable it for serving workloads with heavy cross-request
repetition.

A cache hit returns the memoized :class:`SearchResult` object itself —
its ``stats`` describe the *original* computation (zero new I/O
happened), so aggregate ``BatchStats`` over a result-cache-heavy run
overstate I/O unless read together with the result-cache hit counters.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParameterError

#: Default number of memoized results.
DEFAULT_RESULT_ENTRIES = 1024


@dataclass(frozen=True)
class ResultCacheStats:
    """Snapshot of the result tier's counters."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    entries: int
    capacity_entries: int
    generation: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-ready form (the service's ``/stats`` result-cache block)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "invalidations": self.invalidations,
            "entries": self.entries,
            "capacity_entries": self.capacity_entries,
            "generation": self.generation,
        }


class ResultCache:
    """LRU of ``digest -> SearchResult``, invalidated by generation.

    ``generation_fn`` names the backend's commit point (the LSM
    manifest generation plus memtable growth for the live backend, a
    constant for static indexes); whenever it moves, the whole cache is
    dropped — entry-level tracking would save nothing, since any
    ingest may extend any list.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_RESULT_ENTRIES,
        *,
        generation_fn=None,
    ) -> None:
        if max_entries <= 0:
            raise InvalidParameterError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self._generation_fn = generation_fn or (lambda: 0)
        self._entries: OrderedDict[bytes, object] = OrderedDict()
        self._generation: int | None = None
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @staticmethod
    def digest(
        sketch: np.ndarray,
        theta: float,
        params: tuple,
        query: np.ndarray | None = None,
    ) -> bytes:
        """The cache key: sketch bytes + theta + params (+ query tokens).

        ``query`` must be supplied when the searched parameters make the
        result depend on the raw tokens (``verify=True``).
        """
        hasher = hashlib.blake2b(digest_size=16)
        hasher.update(np.ascontiguousarray(sketch).tobytes())
        hasher.update(repr((float(theta), params)).encode())
        if query is not None:
            hasher.update(np.ascontiguousarray(query).tobytes())
        return hasher.digest()

    def _sync_generation_locked(self) -> int:
        generation = int(self._generation_fn())
        if generation != self._generation:
            if self._generation is not None and self._entries:
                self.invalidations += 1
            self._entries.clear()
            self._generation = generation
        return generation

    def lookup(self, key: bytes) -> tuple[object | None, int]:
        """Return ``(result-or-None, generation token)`` for ``key``.

        The token pins the generation the caller computes under; pass
        it back to :meth:`store` so a result computed against a stale
        snapshot is never memoized as current.
        """
        with self._lock:
            generation = self._sync_generation_locked()
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
            return result, generation

    def store(self, key: bytes, result, generation: int) -> None:
        with self._lock:
            if self._sync_generation_locked() != generation:
                return  # computed against a superseded snapshot
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> ResultCacheStats:
        with self._lock:
            return ResultCacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                invalidations=self.invalidations,
                entries=len(self._entries),
                capacity_entries=self.max_entries,
                generation=int(self._generation or 0),
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"ResultCache(entries={stats.entries}/{stats.capacity_entries}, "
            f"hit_rate={stats.hit_rate:.2f}, gen={stats.generation})"
        )


class CachingSearcher:
    """Drop-in searcher wrapper that memoizes :meth:`search`.

    Wraps any searcher (:class:`~repro.core.search.NearDuplicateSearcher`
    or a live searcher) and answers repeated ``search`` calls from a
    :class:`ResultCache`; every other attribute delegates to the inner
    searcher, so the batch planner, executor, and micro-batcher treat
    it exactly like the searcher it wraps.
    """

    def __init__(
        self,
        inner,
        *,
        max_entries: int = DEFAULT_RESULT_ENTRIES,
        generation_fn=None,
    ) -> None:
        self.inner = inner
        self.result_cache = ResultCache(max_entries, generation_fn=generation_fn)

    def search(self, query: np.ndarray, theta: float, **kwargs):
        query = np.asarray(query, dtype=np.uint32)
        if query.size == 0:
            # Error path (QueryError) belongs to the inner searcher.
            return self.inner.search(query, theta, **kwargs)
        first_match_only = bool(kwargs.get("first_match_only", False))
        verify = bool(kwargs.get("verify", False))
        extra = tuple(
            sorted(
                (name, value)
                for name, value in kwargs.items()
                if name not in ("first_match_only", "verify")
            )
        )
        sketch = self.inner.family.sketch(query)
        key = ResultCache.digest(
            sketch,
            theta,
            (first_match_only, verify, extra),
            query if verify else None,
        )
        cached, generation = self.result_cache.lookup(key)
        if cached is not None:
            return cached
        result = self.inner.search(query, theta, **kwargs)
        self.result_cache.store(key, result, generation)
        return result

    def __getattr__(self, name: str):
        if name.startswith("__"):
            raise AttributeError(name)
        return getattr(self.inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CachingSearcher({self.inner!r}, {self.result_cache!r})"
