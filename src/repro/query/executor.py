"""Parallel, I/O-shared execution of planned query batches.

Execution strategies (``BatchStats.mode``):

``sequential``
    ``workers=0``: exactly today's per-query loop — no planning, no
    dedup, no pinning.  The reference semantics every other mode must
    reproduce byte-for-byte.
``planned``
    ``workers=1`` (or an unsupported index/verify combination): one
    thread, but the batch is sketch-deduplicated and the shared lists
    are batch-pinned in a :class:`~repro.index.cache.CachedIndexReader`,
    so each distinct list is read once per batch.
``thread``
    ``workers>=2`` over a :class:`~repro.index.inverted.MemoryInvertedIndex`:
    unique queries are sharded by their dominant (longest) list and run
    on a thread pool; each thread searches through a private
    :meth:`~repro.index.inverted.MemoryInvertedIndex.view` (shared
    arrays, private I/O accounting) behind its own pinned cache.  The
    numpy kernels release the GIL for the heavy scans.
``process``
    ``workers>=2`` over a :class:`~repro.index.storage.DiskInvertedIndex`:
    mirrors :mod:`repro.index.parallel` — workers open the index from
    its directory once, in the pool initializer (mmap-friendly;
    postings are never pickled), own a private cache, and the parent
    ships each worker the shard of queries whose dominant lists it
    should keep hot.  The pool itself is created lazily and **reused
    across** :meth:`BatchQueryExecutor.execute` **calls**: repeated
    batches pay the fork + index open once, and the per-worker caches
    stay warm between batches.  Call :meth:`BatchQueryExecutor.close`
    (or use the executor as a context manager) to release the pool.

All modes return matches identical to the sequential loop; batching is
a pure execution strategy.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.core.search import (
    NearDuplicateSearcher,
    SearchResult,
    derive_theta_result,
)
from repro.exceptions import InvalidParameterError
from repro.index.cache import CachedIndexReader
from repro.index.cachepolicy import check_cache_policy
from repro.index.inverted import MemoryInvertedIndex
from repro.index.storage import DiskInvertedIndex
from repro.query.planner import BatchPlan, PlannedQuery, plan_batch
from repro.query.results import BatchResult, BatchStats

#: Default per-worker list-cache budget.
DEFAULT_CACHE_BYTES = 32 * 1024 * 1024

#: Fraction of the cache budget the batch pinner may occupy; the rest
#: stays available to the ordinary LRU so long-tail lists still cache.
DEFAULT_PIN_FRACTION = 0.5

_MODES = ("auto", "sequential", "planned", "thread", "process")

# Per-process state of the process-pool path (mirrors index/parallel.py).
_WORKER_SEARCHER: NearDuplicateSearcher | None = None


def _init_query_worker(
    directory: str,
    long_list_cutoff: int | None,
    cache_bytes: int,
    kernel: str,
    cache_policy: str = "lru",
) -> None:
    """Open the on-disk index once per worker process."""
    global _WORKER_SEARCHER
    index = DiskInvertedIndex(directory)
    reader = CachedIndexReader(
        index, capacity_bytes=cache_bytes, policy=cache_policy
    )
    _WORKER_SEARCHER = NearDuplicateSearcher(
        reader, long_list_cutoff=long_list_cutoff, kernel=kernel
    )


def _run_shard(
    searcher: NearDuplicateSearcher,
    shard: list[tuple[int, np.ndarray]],
    theta: float,
    first_match_only: bool,
    verify: bool,
    pin_keys: list[tuple[int, int]],
) -> dict:
    """Execute one shard of unique queries on one searcher.

    Shared by every non-sequential mode: pin the shard's shared lists,
    answer the queries, release the pins, and report the shard's
    I/O/cache accounting alongside the results.
    """
    reader = searcher.index
    begin = time.perf_counter()
    io = getattr(reader, "io_stats", None)
    io_before = (io.bytes_read, io.read_calls, io.seconds) if io else (0, 0, 0.0)
    cache_before = reader.stats() if isinstance(reader, CachedIndexReader) else None
    pinned = 0
    if isinstance(reader, CachedIndexReader):
        for func, minhash in pin_keys:
            pinned += bool(reader.pin(func, minhash))
    pin_io = (
        (
            io.bytes_read - io_before[0],
            io.read_calls - io_before[1],
            io.seconds - io_before[2],
        )
        if io
        else (0, 0, 0.0)
    )
    results: list[tuple[int, SearchResult]] = []
    try:
        for position, query in shard:
            results.append(
                (
                    position,
                    searcher.search(
                        query,
                        theta,
                        first_match_only=first_match_only,
                        verify=verify,
                    ),
                )
            )
    finally:
        if isinstance(reader, CachedIndexReader):
            reader.unpin_all()
    cache_delta = (0, 0, 0, 0, 0)
    if cache_before is not None:
        cache_after = reader.stats()
        cache_delta = (
            cache_after.hits - cache_before.hits,
            cache_after.misses - cache_before.misses,
            cache_after.evictions - cache_before.evictions,
            cache_after.admission_rejections - cache_before.admission_rejections,
            cache_after.singleflight_waits - cache_before.singleflight_waits,
        )
    return {
        "results": results,
        "busy_seconds": time.perf_counter() - begin,
        "pinned": pinned,
        "pin_io": pin_io,
        "cache": cache_delta,
    }


def _run_process_shard(payload: dict) -> dict:
    """Process-pool entry point: run one shard on the per-process searcher."""
    assert _WORKER_SEARCHER is not None
    return _run_shard(
        _WORKER_SEARCHER,
        payload["shard"],
        payload["theta"],
        payload["first_match_only"],
        False,
        payload["pin_keys"],
    )


class BatchQueryExecutor:
    """Plan and run query batches against one searcher's index.

    Parameters
    ----------
    searcher:
        The configured :class:`~repro.core.search.NearDuplicateSearcher`
        (its ``long_list_cutoff`` and ``corpus`` carry over to workers).
    workers:
        ``0`` = the sequential reference loop; ``1`` = planned
        single-threaded execution; ``>= 2`` = sharded thread or process
        pool (chosen from the index type unless ``mode`` forces one).
    batch_size:
        Optional chunking: queries are planned and executed
        ``batch_size`` at a time (bounds sketch/pin memory for very
        large sweeps; dedup then only applies within a chunk).
    mode:
        ``auto`` (default) or an explicit strategy; incompatible
        requests (e.g. ``process`` over an in-memory index) degrade to
        ``planned``.
    cache_bytes / pin_fraction:
        Per-worker list-cache budget and the fraction of it the batch
        pinner may fill.
    """

    def __init__(
        self,
        searcher: NearDuplicateSearcher,
        *,
        workers: int = 0,
        batch_size: int | None = None,
        mode: str = "auto",
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        cache_policy: str = "lru",
        pin_fraction: float = DEFAULT_PIN_FRACTION,
    ) -> None:
        if workers < 0:
            raise InvalidParameterError(f"workers must be >= 0, got {workers}")
        if batch_size is not None and batch_size < 1:
            raise InvalidParameterError(
                f"batch_size must be >= 1 or None, got {batch_size}"
            )
        if mode not in _MODES:
            raise InvalidParameterError(
                f"mode must be one of {_MODES}, got {mode!r}"
            )
        if cache_bytes <= 0:
            raise InvalidParameterError("cache_bytes must be positive")
        if not 0.0 <= pin_fraction <= 1.0:
            raise InvalidParameterError("pin_fraction must be in [0, 1]")
        self.searcher = searcher
        self.workers = int(workers)
        self.batch_size = batch_size
        self.mode = mode
        self.cache_bytes = int(cache_bytes)
        self.cache_policy = check_cache_policy(cache_policy)
        self.pin_fraction = float(pin_fraction)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_key: tuple | None = None

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the persistent process pool (no-op if none exists)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_key = None

    def __enter__(self) -> "BatchQueryExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False)
            self._pool = None

    # ------------------------------------------------------------------
    def execute(
        self,
        queries: list[np.ndarray],
        theta: float,
        *,
        first_match_only: bool = False,
        verify: bool = False,
    ) -> BatchResult:
        """Answer every query; results come back in input order."""
        if self.batch_size is not None and len(queries) > self.batch_size:
            combined = BatchResult()
            for start in range(0, len(queries), self.batch_size):
                chunk = self._execute_batch(
                    queries[start : start + self.batch_size],
                    theta,
                    first_match_only=first_match_only,
                    verify=verify,
                )
                combined.results.extend(chunk.results)
                combined.stats.merge(chunk.stats)
            return combined
        return self._execute_batch(
            queries, theta, first_match_only=first_match_only, verify=verify
        )

    def execute_thetas(
        self,
        queries: list[np.ndarray],
        thetas: list[float],
    ) -> tuple[list[dict[float, SearchResult]], BatchStats]:
        """Batch variant of :meth:`NearDuplicateSearcher.search_thetas`.

        One batched pass at the loosest threshold answers every stricter
        one (rectangles carry exact collision counts); returns one
        ``{theta: SearchResult}`` dict per query, in input order.
        """
        if not thetas:
            raise InvalidParameterError("at least one theta is required")
        batch = self.execute(queries, min(thetas))
        per_query = [
            {theta: derive_theta_result(base, theta) for theta in thetas}
            for base in batch.results
        ]
        return per_query, batch.stats

    def execute_plan(
        self,
        plan: BatchPlan,
        theta: float,
        *,
        first_match_only: bool = False,
        verify: bool = False,
    ) -> BatchResult:
        """Run an already-built :class:`~repro.query.planner.BatchPlan`.

        The reusable entry point for pre-sketched queries: callers that
        sketch queries as they arrive (the online service's
        micro-batcher) build the plan themselves via
        :func:`~repro.query.planner.plan_batch` with ``sketches=...``
        and hand it here, skipping the executor's own planning pass.
        Sequential mode is meaningless for a plan (the plan *is* the
        batched strategy), so ``workers=0`` executes as ``planned``.
        """
        begin = time.perf_counter()
        mode = self._resolve_mode(verify)
        if mode == "sequential":
            mode = "planned"
        shard_count = (
            min(self.workers, len(plan.entries))
            if mode in ("thread", "process")
            else 1
        )
        shards = plan.shards(max(shard_count, 1))
        shard_jobs = [
            (
                [(entry.position, entry.query) for entry in shard],
                self._pin_keys_for(shard, plan),
            )
            for shard in shards
        ]
        if mode == "thread" and len(shards) >= 2:
            outcomes = self._run_threads(
                shard_jobs, theta, first_match_only, verify
            )
        elif mode == "process" and len(shards) >= 2:
            outcomes = self._run_processes(shard_jobs, theta, first_match_only)
        else:
            mode = "planned"
            outcomes = self._run_planned(
                shard_jobs, theta, first_match_only, verify
            )
        batch = self._collect(plan, outcomes, mode)
        batch.stats.workers = self.workers
        batch.stats.total_seconds = time.perf_counter() - begin
        return batch

    # ------------------------------------------------------------------
    def _execute_batch(
        self,
        queries: list[np.ndarray],
        theta: float,
        *,
        first_match_only: bool,
        verify: bool,
    ) -> BatchResult:
        begin = time.perf_counter()
        mode = self._resolve_mode(verify)
        if mode == "sequential":
            batch = self._execute_sequential(
                queries, theta, first_match_only, verify
            )
            batch.stats.workers = self.workers
        else:
            plan = plan_batch(self.searcher, queries, theta, verify=verify)
            batch = self.execute_plan(
                plan, theta, first_match_only=first_match_only, verify=verify
            )
        batch.stats.total_seconds = time.perf_counter() - begin
        return batch

    def _resolve_mode(self, verify: bool) -> str:
        if self.workers == 0 or self.mode == "sequential":
            return "sequential"
        requested = self.mode
        base = self._base_index()
        if requested == "auto":
            if self.workers < 2:
                return "planned"
            if isinstance(base, MemoryInvertedIndex):
                return "thread"
            if isinstance(base, DiskInvertedIndex) and not verify:
                return "process"
            return "planned"
        if requested == "thread" and not isinstance(base, MemoryInvertedIndex):
            return "planned"
        if requested == "process" and (
            not isinstance(base, DiskInvertedIndex) or verify
        ):
            # Process workers re-open the index by path and have no
            # corpus for exact verification.
            return "planned"
        return requested

    def _base_index(self):
        index = self.searcher.index
        if isinstance(index, CachedIndexReader):
            return index.inner
        return index

    def _pin_keys_for(
        self, shard: list[PlannedQuery], plan: BatchPlan
    ) -> list[tuple[int, int]]:
        """Shared lists this shard should pin, within the pin budget."""
        budget = int(self.cache_bytes * self.pin_fraction)
        wanted = {key for entry in shard for key in entry.short_keys}
        keys: list[tuple[int, int]] = []
        used = 0
        for key in plan.shared_keys():
            if key not in wanted:
                continue
            nbytes = plan.list_bytes.get(key, 0)
            if used + nbytes > budget:
                continue
            keys.append(key)
            used += nbytes
        return keys

    # -- strategy bodies ----------------------------------------------
    def _execute_sequential(
        self,
        queries: list[np.ndarray],
        theta: float,
        first_match_only: bool,
        verify: bool,
    ) -> BatchResult:
        stats = BatchStats(
            queries=len(queries),
            unique_queries=len(queries),
            mode="sequential",
        )
        results = []
        begin = time.perf_counter()
        for query in queries:
            result = self.searcher.search(
                query, theta, first_match_only=first_match_only, verify=verify
            )
            stats.add_query(result.stats)
            results.append(result)
        stats.execute_seconds = time.perf_counter() - begin
        stats.worker_busy_seconds = stats.execute_seconds
        return BatchResult(results=results, stats=stats)

    def _run_planned(
        self,
        shard_jobs: list[tuple[list[tuple[int, np.ndarray]], list[tuple[int, int]]]],
        theta: float,
        first_match_only: bool,
        verify: bool,
    ) -> list[dict]:
        searcher = self._planned_searcher()
        outcomes = []
        for shard, pin_keys in shard_jobs:
            outcomes.append(
                _run_shard(
                    searcher, shard, theta, first_match_only, verify, pin_keys
                )
            )
        return outcomes

    def _planned_searcher(self) -> NearDuplicateSearcher:
        """A searcher whose reader supports pinning, reusing an existing
        cache when the caller already searches through one."""
        if isinstance(self.searcher.index, CachedIndexReader):
            return self.searcher
        reader = CachedIndexReader(
            self.searcher.index,
            capacity_bytes=self.cache_bytes,
            policy=self.cache_policy,
        )
        return NearDuplicateSearcher(
            reader,
            long_list_cutoff=self.searcher.long_list_cutoff,
            corpus=self.searcher.corpus,
            kernel=self.searcher.kernel,
        )

    def _run_threads(
        self,
        shard_jobs: list[tuple[list[tuple[int, np.ndarray]], list[tuple[int, int]]]],
        theta: float,
        first_match_only: bool,
        verify: bool,
    ) -> list[dict]:
        base = self._base_index()

        def run(job):
            shard, pin_keys = job
            reader = CachedIndexReader(
                base.view(),
                capacity_bytes=self.cache_bytes,
                policy=self.cache_policy,
            )
            local = NearDuplicateSearcher(
                reader,
                long_list_cutoff=self.searcher.long_list_cutoff,
                corpus=self.searcher.corpus,
                kernel=self.searcher.kernel,
            )
            return _run_shard(
                local, shard, theta, first_match_only, verify, pin_keys
            )

        with ThreadPoolExecutor(max_workers=len(shard_jobs)) as pool:
            return list(pool.map(run, shard_jobs))

    def _run_processes(
        self,
        shard_jobs: list[tuple[list[tuple[int, np.ndarray]], list[tuple[int, int]]]],
        theta: float,
        first_match_only: bool,
    ) -> list[dict]:
        base = self._base_index()
        payloads = [
            {
                "shard": shard,
                "theta": theta,
                "first_match_only": first_match_only,
                "pin_keys": pin_keys,
            }
            for shard, pin_keys in shard_jobs
        ]
        pool = self._process_pool(base)
        return list(pool.map(_run_process_shard, payloads))

    def _process_pool(self, base: DiskInvertedIndex) -> ProcessPoolExecutor:
        """The persistent worker pool, (re)created only when the index
        directory or searcher configuration changes."""
        initargs = (
            str(base.directory),
            self.searcher.long_list_cutoff,
            self.cache_bytes,
            self.searcher.kernel,
            self.cache_policy,
        )
        key = (*initargs, self.workers)
        if self._pool is None or self._pool_key != key:
            self.close()
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_query_worker,
                initargs=initargs,
            )
            self._pool_key = key
        return self._pool

    # -- assembly ------------------------------------------------------
    def _collect(
        self, plan: BatchPlan, outcomes: list[dict], mode: str
    ) -> BatchResult:
        stats = BatchStats(
            queries=plan.num_queries,
            unique_queries=plan.num_unique,
            mode=mode,
            lists_referenced=plan.lists_referenced,
            distinct_lists=len(plan.demand),
            plan_seconds=plan.plan_seconds,
        )
        unique_results: list[SearchResult | None] = [None] * plan.num_unique
        execute_wall = 0.0
        for outcome in outcomes:
            for position, result in outcome["results"]:
                unique_results[position] = result
                stats.add_query(result.stats)
            pin_bytes, pin_calls, pin_seconds = outcome["pin_io"]
            stats.io_bytes += pin_bytes
            stats.io_calls += pin_calls
            stats.io_seconds += pin_seconds
            stats.lists_pinned += outcome["pinned"]
            hits, misses, evictions, rejections, sf_waits = outcome["cache"]
            stats.cache_hits += hits
            stats.cache_misses += misses
            stats.cache_evictions += evictions
            stats.cache_admission_rejections += rejections
            stats.cache_singleflight_waits += sf_waits
            stats.worker_busy_seconds += outcome["busy_seconds"]
            execute_wall = max(execute_wall, outcome["busy_seconds"])
        stats.execute_seconds = execute_wall
        results = [unique_results[index] for index in plan.assignment]
        if any(result is None for result in results):  # pragma: no cover
            raise RuntimeError("batch execution lost a query result")
        return BatchResult(results=results, stats=stats)
