"""Batch I/O planning: sketch, deduplicate, enumerate shared lists.

Generated text is highly repetitive — many prompts yield byte-identical
continuations, and Zipf skew means different queries still touch the
same head inverted lists.  The planner exploits both *before* any I/O
happens:

1. compute every query's k-mins sketch up front;
2. deduplicate queries whose sketches are byte-identical (their search
   results are necessarily identical — the engine sees a query only
   through its sketch), so each distinct sketch is searched once;
3. enumerate the distinct ``(func, minhash)`` inverted lists the batch
   touches and how many unique queries reference each, so the executor
   can pin shared lists once instead of re-reading them per query;
4. tag each query with its *dominant* (longest) list so the executor
   can shard queries by hot-list locality.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.search import NearDuplicateSearcher, sketch_lengths
from repro.core.theory import collision_threshold
from repro.exceptions import InvalidParameterError, QueryError
from repro.index.inverted import POSTING_BYTES

#: A list key: (hash function, min-hash value).
ListKey = tuple[int, int]


@dataclass(frozen=True)
class PlannedQuery:
    """One unique query of a batch, with its precomputed probe set."""

    position: int
    query: np.ndarray
    sketch: np.ndarray
    lengths: np.ndarray
    beta: int
    long_funcs: frozenset[int]

    @property
    def short_keys(self) -> list[ListKey]:
        """The lists the search will fully load (non-empty short lists)."""
        return [
            (func, int(self.sketch[func]))
            for func in range(self.sketch.size)
            if func not in self.long_funcs and self.lengths[func] > 0
        ]

    @property
    def referenced_keys(self) -> list[ListKey]:
        """Every non-empty list the query touches (short and long)."""
        return [
            (func, int(self.sketch[func]))
            for func in range(self.sketch.size)
            if self.lengths[func] > 0
        ]

    @property
    def dominant_key(self) -> ListKey | None:
        """The query's longest list — the shard-locality key."""
        if not self.lengths.size or int(self.lengths.max()) == 0:
            return None
        func = int(self.lengths.argmax())
        return (func, int(self.sketch[func]))


@dataclass
class BatchPlan:
    """The executor's input: unique queries plus shared-list analysis."""

    entries: list[PlannedQuery] = field(default_factory=list)
    #: Original query position -> index into :attr:`entries`.
    assignment: list[int] = field(default_factory=list)
    #: Distinct short-list key -> number of unique queries loading it.
    demand: dict[ListKey, int] = field(default_factory=dict)
    #: Distinct short-list key -> size in bytes (for pin budgeting).
    list_bytes: dict[ListKey, int] = field(default_factory=dict)
    #: Non-empty list references summed over *all* queries (dupes included).
    lists_referenced: int = 0
    plan_seconds: float = 0.0

    @property
    def num_queries(self) -> int:
        return len(self.assignment)

    @property
    def num_unique(self) -> int:
        return len(self.entries)

    def shared_keys(self) -> list[ListKey]:
        """Short-list keys wanted by more than one unique query, most
        demanded first (the pinning priority order)."""
        shared = [key for key, count in self.demand.items() if count > 1]
        shared.sort(key=lambda key: (-self.demand[key], key))
        return shared

    def shards(self, num_shards: int) -> list[list[PlannedQuery]]:
        """Partition unique queries into shards by dominant-list locality.

        Queries sharing their dominant (longest, usually Zipf-head) list
        are kept in one shard so that list is loaded by a single worker;
        groups are placed greedily on the least-loaded shard (LPT), which
        balances shard sizes when one hot list dominates the batch.
        """
        if num_shards <= 1:
            return [list(self.entries)] if self.entries else []
        groups: dict[object, list[PlannedQuery]] = {}
        for entry in self.entries:
            # Queries with no dominant list get their own singleton groups.
            key = entry.dominant_key
            group_key = key if key is not None else ("solo", entry.position)
            groups.setdefault(group_key, []).append(entry)
        loads = [0] * num_shards
        shards: list[list[PlannedQuery]] = [[] for _ in range(num_shards)]
        for group in sorted(groups.values(), key=len, reverse=True):
            target = loads.index(min(loads))
            shards[target].extend(group)
            loads[target] += len(group)
        return [shard for shard in shards if shard]


def plan_batch(
    searcher: NearDuplicateSearcher,
    queries: list[np.ndarray],
    theta: float,
    *,
    dedup: bool = True,
    verify: bool = False,
    sketches: list[np.ndarray] | None = None,
) -> BatchPlan:
    """Build the batch plan for ``queries`` at threshold ``theta``.

    With ``verify=True`` the dedup key includes the query tokens, not
    just the sketch: exact-Jaccard verification reads the raw query, so
    only byte-identical queries may share a result.

    ``sketches`` optionally supplies one precomputed k-mins sketch per
    query (aligned with ``queries``).  The online service sketches each
    request on arrival — while the micro-batch is still lingering — so
    the coalesced plan skips the sketch pass entirely.
    """
    begin = time.perf_counter()
    family = searcher.family
    beta = collision_threshold(family.k, theta)
    if sketches is not None and len(sketches) != len(queries):
        raise InvalidParameterError(
            f"got {len(sketches)} precomputed sketches for {len(queries)} queries"
        )
    plan = BatchPlan()
    seen: dict[bytes, int] = {}
    for position, query in enumerate(queries):
        query = np.asarray(query)
        if query.size == 0:
            raise QueryError("query sequence is empty")
        sketch = (
            sketches[position] if sketches is not None else family.sketch(query)
        )
        key = sketch.tobytes()
        if verify:
            key += b"|" + np.ascontiguousarray(query).tobytes()
        if dedup and key in seen:
            unique_position = seen[key]
            plan.assignment.append(unique_position)
            plan.lists_referenced += len(
                plan.entries[unique_position].referenced_keys
            )
            continue
        lengths = sketch_lengths(searcher.index, sketch, family.k)
        long_funcs = frozenset(searcher._select_long_lists(lengths, beta))
        entry = PlannedQuery(
            position=len(plan.entries),
            query=query,
            sketch=sketch,
            lengths=lengths,
            beta=beta,
            long_funcs=long_funcs,
        )
        if dedup:
            seen[key] = entry.position
        plan.assignment.append(entry.position)
        plan.entries.append(entry)
        plan.lists_referenced += len(entry.referenced_keys)
        for list_key in entry.short_keys:
            plan.demand[list_key] = plan.demand.get(list_key, 0) + 1
            if list_key not in plan.list_bytes:
                func, minhash = list_key
                plan.list_bytes[list_key] = (
                    int(lengths[func]) * POSTING_BYTES
                )
    plan.plan_seconds = time.perf_counter() - begin
    return plan
