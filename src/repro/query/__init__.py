"""Batch query execution: planned, deduplicated, parallel search.

The paper's headline workload (Section 5) is hundreds of thousands of
generated sequences searched against one training corpus.  This package
turns that from "N independent cold searches" into one planned pass:

* :mod:`repro.query.planner` — sketch every query up front, deduplicate
  byte-identical sketches, and enumerate the distinct inverted lists the
  batch will touch;
* :mod:`repro.query.executor` — run the plan sequentially, across
  threads (in-memory index), or across processes (on-disk index), with
  the batch's shared lists pinned in a
  :class:`~repro.index.cache.CachedIndexReader`;
* :mod:`repro.query.results` — per-batch aggregation of
  :class:`~repro.core.search.QueryStats` into a printable
  :class:`~repro.query.results.BatchStats`.

Batching is a pure execution strategy: matches are identical to calling
:meth:`~repro.core.search.NearDuplicateSearcher.search` per query.
"""

from repro.query.executor import BatchQueryExecutor
from repro.query.planner import BatchPlan, PlannedQuery, plan_batch
from repro.query.resultcache import CachingSearcher, ResultCache, ResultCacheStats
from repro.query.results import BatchResult, BatchStats

__all__ = [
    "BatchPlan",
    "BatchQueryExecutor",
    "BatchResult",
    "BatchStats",
    "CachingSearcher",
    "PlannedQuery",
    "ResultCache",
    "ResultCacheStats",
    "plan_batch",
]
