"""Aggregated observability for batch query execution.

One :class:`BatchStats` merges the per-query
:class:`~repro.core.search.QueryStats` of a whole batch and adds the
batch-only dimensions: sketch-dedup savings, distinct-list I/O sharing,
cache counters, and worker utilization.  The CLI prints it verbatim.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.core.search import QueryStats, SearchResult


@dataclass
class BatchStats:
    """Merged accounting of one executed query batch."""

    queries: int = 0
    unique_queries: int = 0
    mode: str = "sequential"
    workers: int = 0
    #: Total (func, hash) list references across all queries (non-empty
    #: lists only) vs. the number of distinct lists actually needed.
    lists_referenced: int = 0
    distinct_lists: int = 0
    lists_pinned: int = 0
    # Stage wall times.
    plan_seconds: float = 0.0
    execute_seconds: float = 0.0
    total_seconds: float = 0.0
    #: Sum of busy wall time across workers (= execute_seconds when
    #: sequential); utilization = busy / (workers * execute wall).
    worker_busy_seconds: float = 0.0
    # Merged QueryStats (duplicates in the batch are counted once —
    # their search ran once).
    io_bytes: int = 0
    io_calls: int = 0
    io_seconds: float = 0.0
    cpu_seconds: float = 0.0
    lists_loaded: int = 0
    #: Zone-map point-read operations issued for long-list refinement
    #: (one per batched ``load_texts_windows`` call on the fused path).
    point_reads: int = 0
    candidates: int = 0
    texts_matched: int = 0
    # Cache counters summed over every reader the batch used.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    #: Inserts the admission policy turned away (TinyLFU frequency
    #: gate, or an entry larger than the whole cache under LRU).
    cache_admission_rejections: int = 0
    #: Cold misses that piggybacked on another thread's in-flight load
    #: instead of reading the list themselves.
    cache_singleflight_waits: int = 0

    # ------------------------------------------------------------------
    @property
    def duplicate_queries(self) -> int:
        """Queries answered for free because their sketch already ran."""
        return self.queries - self.unique_queries

    @property
    def queries_per_second(self) -> float:
        if self.total_seconds <= 0.0:
            return 0.0
        return self.queries / self.total_seconds

    @property
    def list_dedup_ratio(self) -> float:
        """References per distinct list (>= 1; higher = more sharing)."""
        if self.distinct_lists == 0:
            return 1.0
        return self.lists_referenced / self.distinct_lists

    @property
    def worker_utilization(self) -> float:
        """Fraction of worker capacity kept busy during execution."""
        capacity = max(self.workers, 1) * self.execute_seconds
        if capacity <= 0.0:
            return 0.0
        return min(1.0, self.worker_busy_seconds / capacity)

    # ------------------------------------------------------------------
    def add_query(self, stats: QueryStats) -> None:
        """Fold one executed query's stats into the batch totals.

        Driven by the :class:`QueryStats` field list, so a counter
        added there later flows into every same-named ``BatchStats``
        attribute automatically instead of being silently dropped.
        ``total_seconds`` is skipped (the batch keeps wall time, not
        the sum of per-query times); the derived ``cpu_seconds`` is
        accumulated explicitly.
        """
        for spec in dataclasses.fields(stats):
            if spec.name == "total_seconds" or not hasattr(self, spec.name):
                continue
            setattr(
                self, spec.name, getattr(self, spec.name) + getattr(stats, spec.name)
            )
        self.cpu_seconds += stats.cpu_seconds

    def merge(self, other: "BatchStats") -> None:
        """Fold another chunk's stats in (chunked ``batch_size`` runs)."""
        self.queries += other.queries
        self.unique_queries += other.unique_queries
        self.lists_referenced += other.lists_referenced
        self.distinct_lists += other.distinct_lists
        self.lists_pinned += other.lists_pinned
        self.plan_seconds += other.plan_seconds
        self.execute_seconds += other.execute_seconds
        self.total_seconds += other.total_seconds
        self.worker_busy_seconds += other.worker_busy_seconds
        self.io_bytes += other.io_bytes
        self.io_calls += other.io_calls
        self.io_seconds += other.io_seconds
        self.cpu_seconds += other.cpu_seconds
        self.lists_loaded += other.lists_loaded
        self.point_reads += other.point_reads
        self.candidates += other.candidates
        self.texts_matched += other.texts_matched
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_evictions += other.cache_evictions
        self.cache_admission_rejections += other.cache_admission_rejections
        self.cache_singleflight_waits += other.cache_singleflight_waits
        self.workers = max(self.workers, other.workers)
        if self.mode != other.mode:
            self.mode = other.mode if self.mode == "sequential" else self.mode

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Human-readable multi-line summary (what the CLI prints)."""
        lines = [
            f"batch: {self.queries} queries "
            f"({self.unique_queries} unique, {self.duplicate_queries} deduped) "
            f"mode={self.mode} workers={self.workers}",
            f"lists: {self.lists_referenced} referenced, "
            f"{self.distinct_lists} distinct "
            f"({self.list_dedup_ratio:.2f}x shared), {self.lists_pinned} pinned, "
            f"{self.lists_loaded} loaded",
            f"io: {self.io_bytes} bytes in {self.io_calls} calls "
            f"({1e3 * self.io_seconds:.1f} ms), "
            f"{self.point_reads} point reads",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses / "
            f"{self.cache_evictions} evictions "
            f"({self.cache_admission_rejections} rejected, "
            f"{self.cache_singleflight_waits} coalesced)",
            f"time: plan {1e3 * self.plan_seconds:.1f} ms, "
            f"execute {1e3 * self.execute_seconds:.1f} ms, "
            f"total {1e3 * self.total_seconds:.1f} ms "
            f"({self.queries_per_second:.0f} q/s, "
            f"utilization {self.worker_utilization:.0%})",
            f"matches: {self.texts_matched} texts over {self.candidates} candidates",
        ]
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


@dataclass
class BatchResult:
    """Output of one batch execution: per-query results, input order."""

    results: list[SearchResult] = field(default_factory=list)
    stats: BatchStats = field(default_factory=BatchStats)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, position: int) -> SearchResult:
        return self.results[position]

    @property
    def num_matched(self) -> int:
        """Queries with at least one near-duplicate (the Section 5 numerator)."""
        return sum(1 for result in self.results if result.matches)
