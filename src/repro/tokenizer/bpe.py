"""Trainable byte-level BPE tokenizer (paper Section 4, "BPE Tokenization").

The paper trains a byte-pair-encoding model (vocabulary 64K) on a
sample of OpenWebText and uses the GPT-2 tokenizer for Pile.  This is a
from-scratch equivalent: train on any iterable of strings, encode text
to ``uint32`` token ids, decode back, save/load as JSON.

Training follows the classic Sennrich et al. procedure on word
frequencies: pre-tokenize into "words" (runs of letters/digits with an
optional leading space, GPT-2 style), count them, then repeatedly merge
the most frequent adjacent symbol pair until the vocabulary budget is
reached.  Encoding applies the learned merges in rank order.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.corpus.corpus import TOKEN_DTYPE
from repro.exceptions import TokenizerError
from repro.tokenizer.vocab import NUM_BYTE_TOKENS, Vocabulary

# GPT-2-style pre-tokenization, simplified: an optional leading space
# glued to a run of letters, digits, or other non-space characters.
_PRETOKEN_RE = re.compile(r" ?[A-Za-z]+| ?[0-9]+| ?[^\sA-Za-z0-9]+|\s+")


def pretokenize(text: str) -> Iterator[bytes]:
    """Split ``text`` into byte-string pre-tokens (BPE never merges across them)."""
    for match in _PRETOKEN_RE.finditer(text):
        yield match.group().encode("utf-8")


class BPETokenizer:
    """Byte-level BPE with a trained merge table.

    Use :meth:`train` to learn merges, then :meth:`encode` /
    :meth:`decode`.  An untrained tokenizer degenerates to plain byte
    encoding (vocabulary 256), which is still a valid token stream for
    the search engine.
    """

    def __init__(self) -> None:
        self.vocab = Vocabulary()
        self._merges: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        texts: Iterable[str],
        vocab_size: int,
        *,
        max_texts: int | None = None,
        max_text_length: int | None = None,
    ) -> "BPETokenizer":
        """Learn a BPE model with at most ``vocab_size`` tokens.

        Parameters
        ----------
        texts:
            Training strings; consumed once.
        vocab_size:
            Total vocabulary budget including the 256 byte tokens.
        max_texts, max_text_length:
            Optional training-sample caps, mirroring the paper's "1
            million texts with maximum length 10000".
        """
        if vocab_size < NUM_BYTE_TOKENS:
            raise TokenizerError(
                f"vocab_size must be >= {NUM_BYTE_TOKENS}, got {vocab_size}"
            )
        tokenizer = cls()
        word_freqs: Counter[bytes] = Counter()
        for count, text in enumerate(texts):
            if max_texts is not None and count >= max_texts:
                break
            if max_text_length is not None:
                text = text[:max_text_length]
            word_freqs.update(pretokenize(text))

        # Represent each distinct word as a list of token ids (initially bytes).
        words: list[list[int]] = []
        freqs: list[int] = []
        for word, freq in word_freqs.items():
            words.append(list(word))
            freqs.append(freq)

        pair_counts: Counter[tuple[int, int]] = Counter()
        pair_words: dict[tuple[int, int], set[int]] = {}
        for wid, symbols in enumerate(words):
            for pair in zip(symbols, symbols[1:]):
                pair_counts[pair] += freqs[wid]
                pair_words.setdefault(pair, set()).add(wid)

        while len(tokenizer.vocab) < vocab_size and pair_counts:
            # Deterministic: highest count, ties broken by smallest pair ids.
            best_pair, best_count = None, 0
            for pair, count in pair_counts.items():
                if count > best_count or (
                    count == best_count and (best_pair is None or pair < best_pair)
                ):
                    best_pair, best_count = pair, count
            if best_pair is None or best_count <= 0:
                break
            new_id = tokenizer.vocab.add(
                tokenizer.vocab.token_bytes(best_pair[0])
                + tokenizer.vocab.token_bytes(best_pair[1])
            )
            tokenizer._merges[best_pair] = new_id

            # Apply the merge to every word containing the pair and
            # incrementally fix up the affected pair statistics.
            affected = pair_words.pop(best_pair, set())
            pair_counts.pop(best_pair, None)
            for wid in affected:
                symbols = words[wid]
                freq = freqs[wid]
                merged = _merge_word(symbols, best_pair, new_id)
                if merged is None:
                    continue
                for pair in zip(symbols, symbols[1:]):
                    if pair == best_pair:
                        continue
                    pair_counts[pair] -= freq
                    if pair_counts[pair] <= 0:
                        del pair_counts[pair]
                        pair_words.pop(pair, None)
                    else:
                        followers = pair_words.get(pair)
                        if followers is not None:
                            followers.discard(wid)
                words[wid] = merged
                for pair in zip(merged, merged[1:]):
                    pair_counts[pair] += freq
                    pair_words.setdefault(pair, set()).add(wid)
        return tokenizer

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def encode_word(self, word: bytes) -> list[int]:
        """Encode one pre-token by applying merges in rank order."""
        symbols = list(word)
        if len(symbols) < 2 or not self._merges:
            return symbols
        while True:
            best_rank = None
            best_pos = -1
            for pos in range(len(symbols) - 1):
                rank = self._merges.get((symbols[pos], symbols[pos + 1]))
                if rank is not None and (best_rank is None or rank < best_rank):
                    best_rank = rank
                    best_pos = pos
            if best_rank is None:
                return symbols
            symbols[best_pos : best_pos + 2] = [best_rank]

    def encode(self, text: str) -> np.ndarray:
        """Encode a string into a ``uint32`` token-id array."""
        ids: list[int] = []
        for word in pretokenize(text):
            ids.extend(self.encode_word(word))
        return np.asarray(ids, dtype=TOKEN_DTYPE)

    def decode(self, token_ids: np.ndarray) -> str:
        """Decode token ids back to a string (lossless for valid UTF-8)."""
        payload = b"".join(
            self.vocab.token_bytes(int(token)) for token in np.asarray(token_ids)
        )
        return payload.decode("utf-8", errors="replace")

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)

    @property
    def num_merges(self) -> int:
        return len(self._merges)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the model as JSON (latin-1 escapes byte content safely)."""
        payload = {
            "version": 1,
            "tokens": [token.decode("latin-1") for token in self.vocab.to_list()],
            "merges": [
                [int(a), int(b), int(new_id)]
                for (a, b), new_id in sorted(self._merges.items(), key=lambda kv: kv[1])
            ],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "BPETokenizer":
        """Read a model previously written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        if payload.get("version") != 1:
            raise TokenizerError(f"unsupported tokenizer version {payload.get('version')!r}")
        tokenizer = cls()
        tokenizer.vocab = Vocabulary(
            [token.encode("latin-1") for token in payload["tokens"]]
        )
        tokenizer._merges = {
            (int(a), int(b)): int(new_id) for a, b, new_id in payload["merges"]
        }
        return tokenizer


def _merge_word(
    symbols: list[int], pair: tuple[int, int], new_id: int
) -> list[int] | None:
    """Replace every occurrence of ``pair`` in ``symbols`` with ``new_id``.

    Returns ``None`` when the word does not contain the pair (the
    pair-to-word map can hold stale entries after earlier merges).
    """
    first, second = pair
    out: list[int] = []
    pos = 0
    changed = False
    length = len(symbols)
    while pos < length:
        if pos + 1 < length and symbols[pos] == first and symbols[pos + 1] == second:
            out.append(new_id)
            pos += 2
            changed = True
        else:
            out.append(symbols[pos])
            pos += 1
    return out if changed else None
