"""Vocabulary for the byte-level BPE tokenizer.

A vocabulary maps token ids to their byte content.  The first 256 ids
are always the raw bytes (so any input is encodable); merged tokens
follow in merge order.
"""

from __future__ import annotations

from repro.exceptions import TokenizerError

#: Number of base byte tokens present in every vocabulary.
NUM_BYTE_TOKENS = 256


class Vocabulary:
    """Id <-> bytes mapping with O(1) lookups both ways."""

    def __init__(self, tokens: list[bytes] | None = None) -> None:
        if tokens is None:
            tokens = [bytes([value]) for value in range(NUM_BYTE_TOKENS)]
        if len(tokens) < NUM_BYTE_TOKENS:
            raise TokenizerError("vocabulary must include all 256 byte tokens")
        for value in range(NUM_BYTE_TOKENS):
            if tokens[value] != bytes([value]):
                raise TokenizerError(f"token id {value} must be the raw byte {value}")
        self._tokens = list(tokens)
        self._ids = {token: idx for idx, token in enumerate(self._tokens)}
        if len(self._ids) != len(self._tokens):
            raise TokenizerError("vocabulary contains duplicate token byte strings")

    def __len__(self) -> int:
        return len(self._tokens)

    def token_bytes(self, token_id: int) -> bytes:
        """Byte content of one token id."""
        try:
            return self._tokens[token_id]
        except IndexError:
            raise TokenizerError(f"token id {token_id} out of range") from None

    def token_id(self, content: bytes) -> int | None:
        """Id of a byte string, or ``None`` if it is not a token."""
        return self._ids.get(content)

    def add(self, content: bytes) -> int:
        """Register a new merged token; returns its id."""
        if content in self._ids:
            raise TokenizerError(f"token {content!r} already in vocabulary")
        token_id = len(self._tokens)
        self._tokens.append(content)
        self._ids[content] = token_id
        return token_id

    def to_list(self) -> list[bytes]:
        """The id-ordered token list (for serialization)."""
        return list(self._tokens)
