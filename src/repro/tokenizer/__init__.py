"""Byte-level BPE tokenizer: training, encoding, decoding, persistence."""

from repro.tokenizer.bpe import BPETokenizer, pretokenize
from repro.tokenizer.vocab import NUM_BYTE_TOKENS, Vocabulary

__all__ = ["BPETokenizer", "NUM_BYTE_TOKENS", "Vocabulary", "pretokenize"]
