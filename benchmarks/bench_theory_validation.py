"""Theorem 1 / Section 3.2 validation: theory vs measurement.

Not a figure in the paper, but the quantities its analysis proves:
  * the expected valid-compact-window count 2(n+1)/(t+1) - 1;
  * the unbiasedness and O(1/k) variance of the min-hash Jaccard
    estimator;
  * the binomial recall model for Definition 2.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compact_windows import generate_compact_windows_stack
from repro.core.hashing import HashFamily
from repro.core.theory import (
    estimator_variance_bound,
    expected_window_count,
    recall_estimate,
)
from repro.core.verify import distinct_jaccard, estimate_jaccard

from conftest import print_series


def measure_window_counts(n: int, t: int, trials: int) -> float:
    counts = []
    for seed in range(trials):
        rng = np.random.default_rng(seed)
        hashes = rng.permutation(1 << 22)[:n].astype(np.uint32)
        counts.append(generate_compact_windows_stack(hashes, t).size)
    return float(np.mean(counts))


@pytest.mark.parametrize("t", [5, 25, 50])
def test_expected_window_count_formula(benchmark, t):
    n = 400
    measured = benchmark.pedantic(
        measure_window_counts, args=(n, t, 150), rounds=1, iterations=1
    )
    expected = expected_window_count(n, t)
    benchmark.extra_info["measured"] = round(measured, 2)
    benchmark.extra_info["theory"] = round(expected, 2)
    print_series(
        f"Theorem 1 t={t}",
        ["n", "t", "measured", "theory"],
        [(n, t, measured, expected)],
    )
    assert measured == pytest.approx(expected, rel=0.08)


def estimate_bias_and_variance(k: int, trials: int):
    a = np.arange(0, 80, dtype=np.uint32)
    b = np.arange(40, 120, dtype=np.uint32)
    truth = distinct_jaccard(a, b)
    estimates = [
        estimate_jaccard(
            HashFamily(k=k, seed=seed).sketch(a), HashFamily(k=k, seed=seed).sketch(b)
        )
        for seed in range(trials)
    ]
    return truth, float(np.mean(estimates)), float(np.var(estimates))


@pytest.mark.parametrize("k", [16, 64, 256])
def test_estimator_unbiased_with_shrinking_variance(benchmark, k):
    truth, mean, variance = benchmark.pedantic(
        estimate_bias_and_variance, args=(k, 150), rounds=1, iterations=1
    )
    bound = estimator_variance_bound(k)
    benchmark.extra_info["bias"] = round(mean - truth, 4)
    benchmark.extra_info["variance"] = round(variance, 6)
    print_series(
        f"Estimator k={k}",
        ["k", "truth", "mean", "variance", "1/(4k)"],
        [(k, truth, mean, variance, bound)],
    )
    assert abs(mean - truth) < 0.05
    assert variance < 2.0 * bound


def test_recall_model_matches_measurement(benchmark, base_corpus):
    """Definition 2's recall on planted pairs tracks the binomial model."""
    from repro.core.search import NearDuplicateSearcher
    from repro.index.builder import build_memory_index

    corpus = base_corpus.corpus
    family = HashFamily(k=24, seed=8)
    index = build_memory_index(corpus, family, t=25)
    searcher = NearDuplicateSearcher(index)
    theta = 0.8

    def measure():
        hits = similarity = usable = 0
        for plant in base_corpus.planted[:25]:
            query = np.asarray(corpus[plant.target_text])[
                plant.target_start : plant.target_start + plant.length
            ]
            src = np.asarray(corpus[plant.source_text])[
                plant.source_start : plant.source_start + plant.length
            ]
            sim = distinct_jaccard(query, src)
            if sim < 0.8:
                continue
            usable += 1
            similarity += sim
            result = searcher.search(query, theta)
            hits += any(m.text_id == plant.source_text for m in result.matches)
        return hits, usable, similarity / max(usable, 1)

    hits, usable, avg_sim = benchmark.pedantic(measure, rounds=1, iterations=1)
    predicted = recall_estimate(family.k, theta, avg_sim)
    measured = hits / max(usable, 1)
    print_series(
        "Recall model",
        ["pairs", "avg_jaccard", "measured_recall", "binomial_model"],
        [(usable, avg_sim, measured, predicted)],
    )
    assert usable >= 8
    assert abs(measured - predicted) < 0.35
