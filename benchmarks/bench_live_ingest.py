"""Live-index benchmark: ingest throughput, concurrency, compaction.

ISSUE 8 acceptance benchmark.  Three sections over one synthetic
stream:

**Ingest throughput** — appends the stream into a fresh live root once
per WAL ``ack_policy`` (``always`` fsyncs every ack, ``batch``
amortizes over 32, ``none`` leaves durability to the OS), recording
texts/sec and the WAL fsync count.  This quantifies the knob the
serving docs tell operators to turn.

**Concurrent ingest + query** — measures query throughput over a
sealed live index while an ingest thread streams appends into the same
index, against an idle baseline.  Acceptance (>= 2 cores): concurrent
qps >= 30% of idle qps.  On a single core the two threads time-share
one CPU and the ratio measures the scheduler, not the index, so the
gate is recorded as skipped with the measured ``cpu_count`` (PR 6
convention); the ratio is still written.

**Compaction read amplification** — the same query set against R
sealed runs and then after ``compact(all_runs=True)``.  Gates (always
binding): results byte-identical across compaction, compaction reduces
per-query I/O calls (R runs cost ~R point reads per key; one run costs
one), and bytes read do not regress past block-framing noise.

Run: ``PYTHONPATH=src python benchmarks/bench_live_ingest.py [--quick]``
Writes ``BENCH_live_ingest.json`` next to the repository root.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.hashing import HashFamily
from repro.index.lsm import LiveIndex, LiveIndexConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_live_ingest.json"

VOCAB = 2048
T = 20
FAMILY = HashFamily(k=6, seed=13)
WINDOW = 40


def make_stream(num_texts: int, seed: int = 29):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, VOCAB, size=int(rng.integers(60, 220)), dtype=np.uint32)
        for _ in range(num_texts)
    ]


def make_queries(texts, count: int, seed: int = 31):
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(count):
        text = texts[int(rng.integers(len(texts)))]
        start = int(rng.integers(max(1, text.size - WINDOW)))
        queries.append(text[start : start + WINDOW])
    return queries


def fresh_root(base: Path, name: str, **config) -> LiveIndex:
    root = base / name
    shutil.rmtree(root, ignore_errors=True)
    return LiveIndex(
        root, family=FAMILY, t=T, vocab_size=VOCAB,
        config=LiveIndexConfig(background_compaction=False, **config),
    )


def bench_ingest(base: Path, texts, batch: int, seal_postings: int):
    rows = []
    for policy in ("always", "batch", "none"):
        live = fresh_root(
            base, f"ingest-{policy}",
            ack_policy=policy, seal_threshold_postings=seal_postings,
        )
        start = time.perf_counter()
        for lo in range(0, len(texts), batch):
            live.append_texts(texts[lo : lo + batch])
        live.flush()
        seconds = time.perf_counter() - start
        status = live.status()
        rows.append(
            {
                "ack_policy": policy,
                "texts": len(texts),
                "batch": batch,
                "seconds": seconds,
                "texts_per_sec": len(texts) / seconds,
                "wal_syncs": status["wal_syncs"],
                "seals": status["seals"],
                "runs": len(live.runs),
            }
        )
        live.close()
        print(
            f"ingest ack={policy:>6}: {rows[-1]['texts_per_sec']:>8.1f} "
            f"texts/s, {rows[-1]['wal_syncs']} fsyncs, "
            f"{rows[-1]['seals']} seals"
        )
    return rows


def run_queries(searcher, queries, theta: float):
    checksum = 0
    start = time.perf_counter()
    for query in queries:
        result = searcher.search(query, theta)
        for match in result.matches:
            for r in match.rectangles:
                checksum ^= hash(
                    (match.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
                )
    seconds = time.perf_counter() - start
    return len(queries) / seconds, checksum


def bench_concurrent(base: Path, texts, queries, theta: float, seal_postings: int):
    split = len(texts) // 2
    live = fresh_root(
        base, "concurrent", seal_threshold_postings=seal_postings,
        ack_policy="batch",
    )
    live.append_texts(texts[:split])
    live.seal()
    searcher = live.searcher()
    run_queries(searcher, queries[:8], theta)  # warm caches / lazy state

    idle_qps, _ = run_queries(searcher, queries, theta)

    stop = threading.Event()
    ingested = [0]

    def ingest_loop():
        position = split
        while not stop.is_set():
            live.append_texts([texts[position % len(texts)]])
            ingested[0] += 1
            position += 1

    thread = threading.Thread(target=ingest_loop, daemon=True)
    thread.start()
    concurrent_qps, _ = run_queries(searcher, queries, theta)
    stop.set()
    thread.join(timeout=30)
    live.close()
    ratio = concurrent_qps / idle_qps
    print(
        f"concurrent: idle {idle_qps:.1f} qps, with ingest "
        f"{concurrent_qps:.1f} qps (ratio {ratio:.2f}, "
        f"{ingested[0]} texts ingested meanwhile)"
    )
    return {
        "idle_qps": idle_qps,
        "concurrent_qps": concurrent_qps,
        "qps_ratio": ratio,
        "texts_ingested_during_run": ingested[0],
    }


def bench_read_amplification(base: Path, texts, queries, theta: float,
                             seal_postings: int):
    live = fresh_root(
        base, "amplification", seal_threshold_postings=seal_postings,
        ack_policy="none",
    )
    batch = max(1, len(texts) // 64)
    for lo in range(0, len(texts), batch):
        live.append_texts(texts[lo : lo + batch])
    live.seal()

    def source_io(snapshot):
        # The union's own io_stats counts one logical call per merged
        # list; true read amplification lives in the per-run readers
        # (R runs -> ~R point reads per key), so sum those.
        calls = nbytes = 0
        for source in snapshot.sources:
            stats = getattr(source, "io_stats", None)
            if stats is not None:
                calls += stats.read_calls
                nbytes += stats.bytes_read
        return calls, nbytes

    def measure():
        searcher = live.searcher()
        calls0, bytes0 = source_io(live.snapshot())
        stats_sums = {"lists_loaded": 0, "point_reads": 0}
        checksum = 0
        start = time.perf_counter()
        for query in queries:
            result = searcher.search(query, theta)
            stats_sums["lists_loaded"] += result.stats.lists_loaded
            stats_sums["point_reads"] += result.stats.point_reads
            for match in result.matches:
                for r in match.rectangles:
                    checksum ^= hash(
                        (match.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
                    )
        seconds = time.perf_counter() - start
        calls1, bytes1 = source_io(live.snapshot())
        return {
            "runs": len(live.runs),
            "qps": len(queries) / seconds,
            "read_calls": calls1 - calls0,
            "bytes_read": bytes1 - bytes0,
            "lists_loaded": stats_sums["lists_loaded"],
            "point_reads": stats_sums["point_reads"],
        }, checksum

    before, checksum_before = measure()
    live.compact(all_runs=True)
    after, checksum_after = measure()
    live.close()
    print(
        f"read amp: {before['runs']} runs -> {after['runs']}; io calls "
        f"{before['read_calls']} -> {after['read_calls']}, bytes "
        f"{before['bytes_read']} -> {after['bytes_read']}"
    )
    return {
        "before": before,
        "after": after,
        "results_unchanged": checksum_before == checksum_after,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny scale for CI; gates are recorded as skipped",
    )
    parser.add_argument("--texts", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--theta", type=float, default=0.8)
    parser.add_argument("--output", default=str(OUTPUT))
    args = parser.parse_args(argv)

    num_texts = args.texts or (200 if args.quick else 2000)
    num_queries = args.queries or (40 if args.quick else 300)
    seal_postings = 20_000 if args.quick else 100_000
    cpu_count = os.cpu_count() or 1

    texts = make_stream(num_texts)
    queries = make_queries(texts, num_queries)
    base = Path(tempfile.mkdtemp(prefix="bench_live_"))
    try:
        ingest_rows = bench_ingest(base, texts, batch=32,
                                   seal_postings=seal_postings)
        concurrent = bench_concurrent(base, texts, queries, args.theta,
                                      seal_postings)
        amplification = bench_read_amplification(
            base, texts, queries, args.theta,
            seal_postings=seal_postings // 8,
        )
    finally:
        shutil.rmtree(base, ignore_errors=True)

    payload = {
        "benchmark": "bench_live_ingest",
        "quick": args.quick,
        "texts": num_texts,
        "queries": num_queries,
        "theta": args.theta,
        "cpu_count": cpu_count,
        "ingest": ingest_rows,
        "concurrent": concurrent,
        "read_amplification": amplification,
    }

    failures = []
    gates: dict = {}
    # Correctness across compaction binds at every scale: compaction
    # must be invisible to query results.
    ok_results = amplification["results_unchanged"]
    gates["compaction_results_unchanged"] = {"pass": ok_results}
    if not ok_results:
        failures.append("query results changed across compaction")

    if args.quick:
        gates["concurrent_qps"] = {"skipped": "quick scale"}
        gates["read_amplification"] = {"skipped": "quick scale"}
    else:
        # R runs cost ~R point reads per key; one run costs one.  Bytes
        # are only bounded (the posting payload itself is the same data
        # either way — the saving is in calls and block framing).
        reduced_calls = (
            amplification["after"]["read_calls"]
            < amplification["before"]["read_calls"]
        )
        bytes_bounded = (
            amplification["after"]["bytes_read"]
            <= amplification["before"]["bytes_read"] * 1.25
        )
        ok_amp = reduced_calls and bytes_bounded
        gates["read_amplification"] = {
            "read_calls_before": amplification["before"]["read_calls"],
            "read_calls_after": amplification["after"]["read_calls"],
            "bytes_before": amplification["before"]["bytes_read"],
            "bytes_after": amplification["after"]["bytes_read"],
            "pass": ok_amp,
        }
        if not ok_amp:
            failures.append(
                "compaction did not reduce per-query I/O "
                f"(calls {amplification['before']['read_calls']} -> "
                f"{amplification['after']['read_calls']}, bytes "
                f"{amplification['before']['bytes_read']} -> "
                f"{amplification['after']['bytes_read']})"
            )
        ratio = concurrent["qps_ratio"]
        if cpu_count >= 2:
            ok_ratio = ratio >= 0.3
            gates["concurrent_qps"] = {
                "ratio": ratio, "required": 0.3, "pass": ok_ratio,
            }
            if not ok_ratio:
                failures.append(
                    f"concurrent-query qps ratio {ratio:.2f} < 0.3"
                )
        else:
            gates["concurrent_qps"] = {
                "ratio": ratio,
                "required": 0.3,
                "skipped": (
                    f"host has {cpu_count} cpu(s); an ingest thread and a "
                    "query thread time-share one core, so the ratio "
                    "measures the scheduler, not the index"
                ),
            }
            print(f"concurrent gate skipped: cpu_count={cpu_count} < 2 "
                  f"(measured ratio {ratio:.2f})")
    payload["gates"] = gates

    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
