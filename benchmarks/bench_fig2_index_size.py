"""Figure 2(e)-(h): index size.

Paper claims reproduced here:
  * the on-disk index size is proportional to the number of compact
    windows (16 bytes per window), hence inversely proportional to t,
    linear in k, and linear in the corpus size;
  * each per-hash-function index is much smaller than the corpus for a
    reasonable t: the size ratio is bounded by 8/t.
"""

from __future__ import annotations

import pytest

from repro.core.hashing import HashFamily
from repro.core.theory import index_size_ratio_bound
from repro.corpus.corpus import corpus_nbytes
from repro.index.builder import build_memory_index
from repro.index.storage import DiskInvertedIndex, write_index

from conftest import SIZE_MULTIPLIERS, T_VALUES, VOCAB_LARGE, print_series


def _disk_size(index, tmp_path) -> int:
    directory = write_index(index, tmp_path / "idx")
    return DiskInvertedIndex(directory).nbytes


@pytest.mark.parametrize("t", T_VALUES)
def test_fig2e_index_size_vs_t(benchmark, base_corpus, tmp_path, t):
    """Figure 2(e): per-index size shrinks as 1/t and beats the 8/t bound."""
    family = HashFamily(k=1, seed=3)
    index = build_memory_index(base_corpus.corpus, family, t, vocab_size=VOCAB_LARGE)
    nbytes = benchmark.pedantic(
        _disk_size, args=(index, tmp_path), rounds=1, iterations=1
    )
    corpus_bytes = corpus_nbytes(base_corpus.corpus)
    ratio = nbytes / corpus_bytes
    bound = index_size_ratio_bound(t)
    benchmark.extra_info["index_bytes"] = nbytes
    benchmark.extra_info["ratio"] = round(ratio, 4)
    print_series(
        f"Fig 2(e) t={t}",
        ["t", "index_bytes", "corpus_bytes", "ratio", "8/t bound"],
        [(t, nbytes, corpus_bytes, ratio, bound)],
    )
    assert ratio <= bound * 1.1


@pytest.mark.parametrize("k", [1, 2, 4])
def test_fig2f_index_size_vs_k(benchmark, base_corpus, tmp_path, k):
    """Figure 2(f): total index size linear in k."""
    t = 50
    index = build_memory_index(
        base_corpus.corpus, HashFamily(k=k, seed=3), t, vocab_size=VOCAB_LARGE
    )
    nbytes = benchmark.pedantic(
        _disk_size, args=(index, tmp_path), rounds=1, iterations=1
    )
    reference = build_memory_index(
        base_corpus.corpus, HashFamily(k=1, seed=3), t, vocab_size=VOCAB_LARGE
    ).nbytes
    print_series(
        f"Fig 2(f) k={k}", ["k", "index_bytes", "k*1x-bytes"], [(k, nbytes, k * reference)]
    )
    assert nbytes == pytest.approx(k * reference, rel=0.1)


@pytest.mark.parametrize("multiplier", SIZE_MULTIPLIERS)
def test_fig2gh_index_size_vs_corpus_size(
    benchmark, scaled_corpora, tmp_path, multiplier
):
    """Figure 2(g,h): index size linear in corpus size."""
    t = 50
    family = HashFamily(k=1, seed=3)
    corpus = scaled_corpora[multiplier]
    index = build_memory_index(corpus, family, t, vocab_size=VOCAB_LARGE)
    nbytes = benchmark.pedantic(
        _disk_size, args=(index, tmp_path), rounds=1, iterations=1
    )
    base_bytes = build_memory_index(
        scaled_corpora[1], family, t, vocab_size=VOCAB_LARGE
    ).nbytes
    print_series(
        f"Fig 2(g,h) size={multiplier}x",
        ["size", "index_bytes"],
        [(f"{multiplier}x", nbytes)],
    )
    token_ratio = corpus.total_tokens / scaled_corpora[1].total_tokens
    assert nbytes / base_bytes == pytest.approx(token_ratio, rel=0.15)
