"""Figure 2(a)-(d): number of compact windows generated.

Paper claims reproduced here:
  * the window count is inversely proportional to the length threshold t
    (2(n+1)/(t+1) - 1 per text);
  * a larger BPE vocabulary yields slightly fewer windows (shorter
    token sequences);
  * the count grows linearly with the number of hash functions k and
    with the corpus size.
"""

from __future__ import annotations

import pytest

from repro.core.hashing import HashFamily
from repro.core.theory import expected_window_count
from repro.corpus.synthetic import synthweb
from repro.index.builder import build_memory_index

from conftest import (
    BASE_TEXTS,
    MEAN_LENGTH,
    SIZE_MULTIPLIERS,
    T_VALUES,
    VOCAB_LARGE,
    VOCAB_SMALL,
    print_series,
)


@pytest.mark.parametrize("t", T_VALUES)
def test_fig2a_window_count_vs_t(benchmark, base_corpus, t):
    """Figure 2(a): windows vs length threshold (k=1, vocab 8K)."""
    family = HashFamily(k=1, seed=3)
    index = benchmark.pedantic(
        build_memory_index,
        args=(base_corpus.corpus, family, t),
        kwargs={"vocab_size": VOCAB_LARGE},
        rounds=1,
        iterations=1,
    )
    expected = sum(
        expected_window_count(text.size, t) for text in base_corpus.corpus
    )
    benchmark.extra_info["windows"] = index.num_postings
    benchmark.extra_info["theory"] = round(expected)
    print_series(
        f"Fig 2(a) t={t}",
        ["t", "windows", "theory"],
        [(t, index.num_postings, round(expected))],
    )
    # Inverse proportionality to t: measured within 15% of the formula.
    assert abs(index.num_postings - expected) < 0.15 * expected


def test_fig2b_vocabulary_size_effect(benchmark, base_corpus):
    """Figure 2(b): a larger vocabulary gives (slightly) fewer windows.

    The synthetic corpora control token counts directly, so we emulate
    the retokenization effect: the same underlying documents encoded
    with a larger vocabulary are ~10% shorter.
    """
    t = 50
    family = HashFamily(k=1, seed=3)
    small_vocab = synthweb(
        num_texts=BASE_TEXTS, mean_length=int(MEAN_LENGTH * 1.1),
        vocab_size=VOCAB_SMALL, seed=1,
    )
    large_vocab = synthweb(
        num_texts=BASE_TEXTS, mean_length=MEAN_LENGTH,
        vocab_size=VOCAB_LARGE, seed=1,
    )
    index_small = build_memory_index(
        small_vocab.corpus, family, t, vocab_size=VOCAB_SMALL
    )
    index_large = benchmark.pedantic(
        build_memory_index,
        args=(large_vocab.corpus, family, t),
        kwargs={"vocab_size": VOCAB_LARGE},
        rounds=1,
        iterations=1,
    )
    print_series(
        "Fig 2(b) vocabulary size",
        ["vocab", "windows"],
        [
            (VOCAB_SMALL, index_small.num_postings),
            (VOCAB_LARGE, index_large.num_postings),
        ],
    )
    assert index_large.num_postings < index_small.num_postings


@pytest.mark.parametrize("k", [1, 2, 4])
def test_fig2_window_count_vs_k(benchmark, base_corpus, k):
    """Figure 2(a/b) inset: windows grow linearly with k."""
    t = 50
    family = HashFamily(k=k, seed=3)
    index = benchmark.pedantic(
        build_memory_index,
        args=(base_corpus.corpus, family, t),
        kwargs={"vocab_size": VOCAB_LARGE},
        rounds=1,
        iterations=1,
    )
    reference = build_memory_index(
        base_corpus.corpus, HashFamily(k=1, seed=3), t, vocab_size=VOCAB_LARGE
    )
    benchmark.extra_info["windows"] = index.num_postings
    print_series(
        f"Fig 2 windows vs k={k}",
        ["k", "windows", "1x-reference"],
        [(k, index.num_postings, reference.num_postings)],
    )
    # Linear in k within 10% (different hash draws move counts slightly).
    ratio = index.num_postings / (k * reference.num_postings)
    assert 0.9 < ratio < 1.1


@pytest.mark.parametrize("multiplier", SIZE_MULTIPLIERS)
def test_fig2cd_window_count_vs_corpus_size(benchmark, scaled_corpora, multiplier):
    """Figure 2(c,d): windows grow linearly with the corpus size."""
    t = 100
    family = HashFamily(k=1, seed=3)
    corpus = scaled_corpora[multiplier]
    index = benchmark.pedantic(
        build_memory_index,
        args=(corpus, family, t),
        kwargs={"vocab_size": VOCAB_LARGE},
        rounds=1,
        iterations=1,
    )
    base = scaled_corpora[1]
    base_index = build_memory_index(base, family, t, vocab_size=VOCAB_LARGE)
    benchmark.extra_info["windows"] = index.num_postings
    print_series(
        f"Fig 2(c,d) size={multiplier}x",
        ["size", "tokens", "windows"],
        [(f"{multiplier}x", corpus.total_tokens, index.num_postings)],
    )
    token_ratio = corpus.total_tokens / base.total_tokens
    window_ratio = index.num_postings / base_index.num_postings
    assert window_ratio == pytest.approx(token_ratio, rel=0.15)
