"""Query hot-path benchmark: fused collision kernel vs. per-group loop.

ISSUE 4 acceptance benchmark, two measurements:

* **Kernel throughput** — the same merged short-list postings pushed
  through the pre-vectorization path (one Python-level
  :func:`~repro.core.intervals.collision_count` call per candidate
  group) and through one
  :func:`~repro.core.intervals.fused_collision_count` call covering
  every group.  Reported as million postings/sec; the fused kernel must
  be >= 2x the loop at full scale.
* **End-to-end latency** — p50/p95 of single-query
  :meth:`~repro.core.search.NearDuplicateSearcher.search` over an
  in-memory index with ``kernel="reference"`` vs ``kernel="fused"``
  (matches are asserted identical while measuring).

Run: ``PYTHONPATH=src python benchmarks/bench_query_hotpath.py [--quick]``
Writes ``BENCH_query_hotpath.json`` next to the repository root.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.hashing import HashFamily
from repro.core.intervals import collision_count, fused_collision_count
from repro.core.search import NearDuplicateSearcher
from repro.corpus.synthetic import synthweb
from repro.index.builder import build_memory_index

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_query_hotpath.json"


def build_workload(quick: bool):
    num_texts = 150 if quick else 2000
    data = synthweb(
        num_texts=num_texts,
        mean_length=160 if quick else 300,
        vocab_size=2048,
        duplicate_rate=0.35,
        span_length=64,
        mutation_rate=0.03,
        seed=17,
    )
    family = HashFamily(k=16 if quick else 32, seed=9)
    index = build_memory_index(data.corpus, family, t=25, vocab_size=2048)
    return data, family, index


def gather_groups(data, family, index, theta: float, num_queries: int):
    """Collect the merged short-list posting groups real queries produce.

    Mirrors the searcher's own preamble (load every non-empty list of
    the query sketch, concatenate, group by text) so the kernel
    benchmark runs on exactly the arrays the hot path sees.
    """
    groups = []
    alphas = []
    from repro.core.theory import collision_threshold

    for position in range(num_queries):
        query = np.asarray(data.corpus[position % len(data.corpus)])[:64]
        sketch = family.sketch(query)
        chunks = [
            postings
            for func in range(family.k)
            if (postings := index.load_list(func, int(sketch[func]))).size
        ]
        if not chunks:
            continue
        merged = np.concatenate(chunks)
        order = np.lexsort((merged["left"], merged["text"]))
        merged = merged[order]
        beta = collision_threshold(family.k, theta)
        texts = merged["text"]
        starts = np.flatnonzero(
            np.concatenate(([True], texts[1:] != texts[:-1]))
        )
        sizes = np.diff(np.append(starts, merged.size))
        keep = sizes >= beta
        if not keep.any():
            continue
        kept = merged[np.repeat(keep, sizes)]
        groups.append((kept, sizes[keep]))
        alphas.append(beta)
    return groups, alphas


def bench_kernel(groups, alphas, repeats: int) -> dict:
    """Time the per-group loop vs. the fused kernel on identical input."""
    total_postings = sum(int(kept.size) for kept, _ in groups)

    def run_loop():
        emitted = 0
        for (kept, sizes), alpha in zip(groups, alphas):
            bounds = np.concatenate(([0], np.cumsum(sizes)))
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                emitted += len(collision_count(kept[lo:hi], alpha))
        return emitted

    def run_fused():
        emitted = 0
        for (kept, sizes), alpha in zip(groups, alphas):
            gids = np.repeat(np.arange(sizes.size, dtype=np.int64), sizes)
            rect = fused_collision_count(
                kept["left"], kept["center"], kept["right"], gids, alpha
            )
            emitted += rect.size
        return emitted

    # Warm-up + result equivalence check.
    assert run_loop() == run_fused(), "kernel outputs diverge"

    loop_seconds = min(
        _timed(run_loop) for _ in range(repeats)
    )
    fused_seconds = min(
        _timed(run_fused) for _ in range(repeats)
    )
    return {
        "groups": sum(int(sizes.size) for _, sizes in groups),
        "postings": total_postings,
        "loop_seconds": loop_seconds,
        "fused_seconds": fused_seconds,
        "loop_mpostings_per_s": total_postings / loop_seconds / 1e6,
        "fused_mpostings_per_s": total_postings / fused_seconds / 1e6,
        "speedup": loop_seconds / fused_seconds if fused_seconds else 0.0,
    }


def _timed(fn) -> float:
    begin = time.perf_counter()
    fn()
    return time.perf_counter() - begin


def bench_end_to_end(data, index, theta: float, num_queries: int) -> dict:
    """Per-query latency of the reference vs. fused searcher."""
    queries = [
        np.asarray(data.corpus[position % len(data.corpus)])[:64]
        for position in range(num_queries)
    ]
    out = {}
    results = {}
    for kernel in ("reference", "fused"):
        searcher = NearDuplicateSearcher(index, kernel=kernel)
        latencies = []
        kernel_results = []
        for query in queries:
            begin = time.perf_counter()
            result = searcher.search(query, theta)
            latencies.append(time.perf_counter() - begin)
            kernel_results.append(result.matches)
        ordered = np.sort(latencies)
        results[kernel] = kernel_results
        out[kernel] = {
            "queries": num_queries,
            "p50_ms": 1e3 * float(np.quantile(ordered, 0.50)),
            "p95_ms": 1e3 * float(np.quantile(ordered, 0.95)),
            "mean_ms": 1e3 * float(np.mean(ordered)),
        }
    assert results["reference"] == results["fused"], "searcher outputs diverge"
    out["p50_speedup"] = (
        out["reference"]["p50_ms"] / out["fused"]["p50_ms"]
        if out["fused"]["p50_ms"]
        else 0.0
    )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (seconds, not minutes)"
    )
    parser.add_argument("--theta", type=float, default=0.7)
    parser.add_argument("--output", default=str(OUTPUT))
    args = parser.parse_args(argv)

    data, family, index = build_workload(args.quick)
    num_queries = 20 if args.quick else 120
    groups, alphas = gather_groups(data, family, index, args.theta, num_queries)
    kernel = bench_kernel(groups, alphas, repeats=2 if args.quick else 5)
    end_to_end = bench_end_to_end(
        data, index, args.theta, 20 if args.quick else 100
    )

    print(
        f"kernel: {kernel['groups']} groups, {kernel['postings']} postings | "
        f"loop {kernel['loop_mpostings_per_s']:.2f} Mp/s, "
        f"fused {kernel['fused_mpostings_per_s']:.2f} Mp/s "
        f"({kernel['speedup']:.2f}x)"
    )
    print(
        f"end-to-end p50: reference {end_to_end['reference']['p50_ms']:.2f} ms, "
        f"fused {end_to_end['fused']['p50_ms']:.2f} ms "
        f"({end_to_end['p50_speedup']:.2f}x)"
    )

    payload = {
        "benchmark": "bench_query_hotpath",
        "quick": args.quick,
        "theta": args.theta,
        "kernel": kernel,
        "end_to_end": end_to_end,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2))
    print(f"wrote {args.output}")

    # Acceptance gate (full scale only): fused kernel >= 2x the loop,
    # and the fused searcher's p50 no slower than the reference.
    if not args.quick:
        ok = kernel["speedup"] >= 2.0 and end_to_end["p50_speedup"] >= 1.0
        print(
            f"acceptance: kernel speedup {kernel['speedup']:.2f}x (>= 2 required), "
            f"p50 speedup {end_to_end['p50_speedup']:.2f}x (>= 1 required) "
            f"-> {'PASS' if ok else 'FAIL'}"
        )
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
