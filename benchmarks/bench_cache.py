"""Multi-tier read-cache benchmark: block tier, TinyLFU, single-flight.

ISSUE 10 acceptance benchmark.  Four sections:

**Decoded-block tier** — a point-read-heavy Zipf query mix against a
packed on-disk index, repeated for several passes, with the decoded-
block cache off and then on.  The tier serves repeat zone-map point
reads from decoded arrays, so ``IOStats.decoded_bytes`` collapses to
the cold pass.  Gate (always binding): total decoded bytes reduced by
``>= 3x`` across the passes.

**TinyLFU vs LRU** — one scan-polluted access trace (a Zipf-hot list
set interleaved with a stream of one-shot lists) replayed against a
list cache sized to the hot set, under ``policy="lru"`` and
``policy="tinylfu"``.  LRU lets every one-shot list flush a hot entry;
the TinyLFU frequency gate turns those scans away.  Gate (always
binding): TinyLFU hit rate strictly above LRU's.

**Single-flight misses** — 4 threads replay a shared key set through
(a) a cache that holds its lock across the inner read (the pre-tier
behaviour) and (b) the single-flight ``CachedIndexReader``, over a
sleep-injected inner reader (10 ms per cold load, so the section
measures lock structure, not numpy).  Gate: single-flight ``>= 1.5x``
qps; when the ratio falls short on a host with < 4 CPUs the gate is
recorded as skipped with the measured ratio (thread overlap of
*compute* needs cores; overlap of injected I/O usually passes anyway).

**Byte-identity** — every tier/policy combination (list policy x block
tier x result tier) must return exactly the uncached searcher's
matches on the same query mix.  Always binding.

Run: ``PYTHONPATH=src python benchmarks/bench_cache.py [--quick]``
Writes ``BENCH_cache.json`` next to the repository root.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.corpus import InMemoryCorpus
from repro.index.blockcache import DecodedBlockCache
from repro.index.builder import build_memory_index
from repro.index.cache import CachedIndexReader
from repro.index.cachepolicy import CACHE_POLICIES
from repro.index.inverted import IOStats, POSTING_BYTES, POSTING_DTYPE
from repro.index.storage import DiskInvertedIndex, write_index
from repro.query.resultcache import CachingSearcher

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_cache.json"

VOCAB = 512
T = 25
FAMILY = HashFamily(k=8, seed=17)
WINDOW = 48


def make_corpus(num_texts: int, seed: int = 23) -> InMemoryCorpus:
    """Synthetic web-ish corpus with heavy cross-text duplication, so
    the index grows long Zipf-head lists that force zone-map point
    reads on the fused path."""
    rng = np.random.default_rng(seed)
    motifs = [
        rng.integers(0, VOCAB, size=80, dtype=np.uint32) for _ in range(12)
    ]
    texts = []
    for _ in range(num_texts):
        parts = [
            rng.integers(0, VOCAB, size=int(rng.integers(30, 90)), dtype=np.uint32)
        ]
        for _ in range(int(rng.integers(1, 4))):
            motif = motifs[int(rng.zipf(1.6)) % len(motifs)]
            parts.append(motif)
        texts.append(np.concatenate(parts))
    return InMemoryCorpus(texts)


def make_queries(corpus: InMemoryCorpus, count: int, seed: int = 41):
    """Zipf-skewed query mix: most queries re-probe a few hot texts."""
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(count):
        text_id = int(rng.zipf(1.4)) % len(corpus)
        tokens = np.asarray(corpus[text_id], dtype=np.uint32)
        start = int(rng.integers(max(1, tokens.size - WINDOW)))
        queries.append(tokens[start : start + WINDOW])
    return queries


def canon(result):
    return (
        result.k,
        result.theta,
        result.beta,
        result.t,
        [(match.text_id, match.rectangles) for match in result.matches],
    )


# ----------------------------------------------------------------------
# Section 1: decoded-block tier
# ----------------------------------------------------------------------
def bench_block_tier(index_dir: Path, queries, passes: int, theta: float):
    def run(block_cache: DecodedBlockCache | None):
        index = DiskInvertedIndex(index_dir)
        if block_cache is not None:
            index.enable_block_cache(block_cache)
        searcher = NearDuplicateSearcher(index)
        begin = time.perf_counter()
        for _ in range(passes):
            for query in queries:
                searcher.search(query, theta)
        seconds = time.perf_counter() - begin
        return index.io_stats.decoded_bytes, seconds

    decoded_off, seconds_off = run(None)
    cache = DecodedBlockCache(64 << 20)
    decoded_on, seconds_on = run(cache)
    ratio = decoded_off / max(decoded_on, 1)
    stats = cache.stats()
    print(
        f"block tier: decoded {decoded_off} -> {decoded_on} bytes over "
        f"{passes} passes ({ratio:.1f}x less decode work, "
        f"hit rate {stats.hit_rate:.0%}, "
        f"{seconds_off:.2f}s -> {seconds_on:.2f}s)"
    )
    return {
        "passes": passes,
        "decoded_bytes_off": int(decoded_off),
        "decoded_bytes_on": int(decoded_on),
        "decoded_reduction": ratio,
        "seconds_off": seconds_off,
        "seconds_on": seconds_on,
        "block_cache": stats.to_dict(),
    }


# ----------------------------------------------------------------------
# Section 2: TinyLFU vs LRU on a scan-polluted trace
# ----------------------------------------------------------------------
def build_trace(index, hot_lists: int, scan_lists: int, rounds: int, seed: int = 7):
    """(func, minhash) accesses: hot set re-touched every round, with a
    rolling window of one-shot scan keys polluting each round."""
    keyed = []
    for func in range(index.family.k):
        for minhash in np.asarray(index.list_keys(func)):
            keyed.append((func, int(minhash)))
    keyed.sort(key=lambda key: -index.list_length(*key))
    hot = keyed[:hot_lists]
    scans = keyed[hot_lists : hot_lists + scan_lists]
    rng = np.random.default_rng(seed)
    trace = []
    for round_no in range(rounds):
        order = list(hot)
        rng.shuffle(order)
        trace.extend(order)
        lo = (round_no * len(scans) // rounds) % max(len(scans), 1)
        trace.extend(scans[lo : lo + max(1, len(scans) // rounds)])
    hot_bytes = sum(index.list_length(*key) * POSTING_BYTES for key in hot)
    return trace, hot, hot_bytes


def bench_admission(index, hot_lists: int, scan_lists: int, rounds: int):
    trace, hot, hot_bytes = build_trace(index, hot_lists, scan_lists, rounds)
    capacity = max(int(hot_bytes * 1.3), 4096)
    rows = {}
    for policy in CACHE_POLICIES:
        reader = CachedIndexReader(index, capacity_bytes=capacity, policy=policy)
        for func, minhash in trace:
            reader.load_list(func, minhash)
        stats = reader.stats()
        rows[policy] = stats.to_dict()
        print(
            f"admission {policy:>8}: hit rate {stats.hit_rate:.3f} "
            f"({stats.hits}/{stats.hits + stats.misses}, "
            f"{stats.evictions} evictions, "
            f"{stats.admission_rejections} rejections)"
        )
    return {
        "hot_lists": len(hot),
        "scan_lists": scan_lists,
        "rounds": rounds,
        "capacity_bytes": capacity,
        "accesses": len(trace),
        "policies": rows,
    }


# ----------------------------------------------------------------------
# Section 3: single-flight vs lock-held-across-read
# ----------------------------------------------------------------------
class _SleepReader:
    """Inner reader with injected I/O latency per cold load."""

    def __init__(self, delay: float):
        self.family = FAMILY
        self.t = T
        self.io_stats = IOStats()
        self.delay = delay

    def load_list(self, func: int, minhash: int) -> np.ndarray:
        time.sleep(self.delay)
        postings = np.zeros(8, dtype=POSTING_DTYPE)
        postings["text"] = minhash
        return postings

    def list_length(self, func: int, minhash: int) -> int:
        return 8


class _SerializedCache:
    """The pre-tier structure: one lock held across the inner read, no
    miss coalescing — concurrent misses fully serialize."""

    def __init__(self, inner):
        self.inner = inner
        self._lists: dict = {}
        self._lock = threading.Lock()

    def load_list(self, func: int, minhash: int) -> np.ndarray:
        with self._lock:
            key = (func, minhash)
            cached = self._lists.get(key)
            if cached is not None:
                return cached
            postings = self.inner.load_list(func, minhash)
            self._lists[key] = postings
            return postings


def _drive(cache, keys, threads: int, seed: int = 3) -> float:
    rng = np.random.default_rng(seed)
    orders = []
    for _ in range(threads):
        order = list(keys)
        rng.shuffle(order)
        orders.append(order)
    barrier = threading.Barrier(threads)

    def worker(order):
        barrier.wait()
        for func, minhash in order:
            cache.load_list(func, minhash)

    pool = [
        threading.Thread(target=worker, args=(order,)) for order in orders
    ]
    begin = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return time.perf_counter() - begin


def bench_singleflight(distinct_keys: int, threads: int, delay: float):
    keys = [(func, minhash) for func in range(4) for minhash in range(distinct_keys // 4)]
    serialized_seconds = _drive(_SerializedCache(_SleepReader(delay)), keys, threads)
    reader = CachedIndexReader(_SleepReader(delay), capacity_bytes=32 << 20)
    singleflight_seconds = _drive(reader, keys, threads)
    loads = len(keys) * threads
    ratio = serialized_seconds / max(singleflight_seconds, 1e-9)
    stats = reader.stats()
    print(
        f"single-flight: serialized {loads / serialized_seconds:.0f} loads/s, "
        f"single-flight {loads / singleflight_seconds:.0f} loads/s "
        f"({ratio:.2f}x, {stats.singleflight_waits} waits coalesced)"
    )
    return {
        "distinct_keys": len(keys),
        "threads": threads,
        "inner_delay_ms": 1e3 * delay,
        "serialized_seconds": serialized_seconds,
        "singleflight_seconds": singleflight_seconds,
        "qps_ratio": ratio,
        "singleflight_waits": stats.singleflight_waits,
        "misses": stats.misses,
    }


# ----------------------------------------------------------------------
# Section 4: byte-identity across every configuration
# ----------------------------------------------------------------------
def bench_identity(index_dir: Path, queries, theta: float):
    baseline_searcher = NearDuplicateSearcher(DiskInvertedIndex(index_dir))
    baseline = [canon(baseline_searcher.search(query, theta)) for query in queries]
    checked = []
    identical = True
    for policy in CACHE_POLICIES:
        for block_bytes in (0, 16 << 20):
            for result_tier in (False, True):
                index = DiskInvertedIndex(index_dir)
                if block_bytes:
                    index.enable_block_cache(
                        DecodedBlockCache(block_bytes, policy=policy)
                    )
                reader = CachedIndexReader(
                    index, capacity_bytes=8 << 20, policy=policy
                )
                searcher = NearDuplicateSearcher(reader)
                if result_tier:
                    searcher = CachingSearcher(searcher)
                name = (
                    f"{policy}+block={bool(block_bytes)}+result={result_tier}"
                )
                ok = True
                for _ in range(2):  # second pass exercises warm paths
                    got = [canon(searcher.search(query, theta)) for query in queries]
                    ok = ok and got == baseline
                checked.append({"config": name, "identical": ok})
                identical = identical and ok
    print(
        f"identity: {len(checked)} configurations "
        f"{'all byte-identical' if identical else 'DIVERGED'}"
    )
    return {"configurations": checked, "identical": identical}


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="tiny scale for CI smoke"
    )
    parser.add_argument("--texts", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--theta", type=float, default=0.8)
    parser.add_argument("--output", default=str(OUTPUT))
    args = parser.parse_args(argv)

    num_texts = args.texts or (250 if args.quick else 1200)
    num_queries = args.queries or (30 if args.quick else 150)
    passes = 3 if args.quick else 5
    cpu_count = os.cpu_count() or 1

    corpus = make_corpus(num_texts)
    index = build_memory_index(corpus, FAMILY, T, vocab_size=VOCAB)
    queries = make_queries(corpus, num_queries)
    base = Path(tempfile.mkdtemp(prefix="bench_cache_"))
    try:
        index_dir = base / "index"
        write_index(index, index_dir, codec="packed")
        block = bench_block_tier(index_dir, queries, passes, args.theta)
        admission = bench_admission(
            index,
            hot_lists=12 if args.quick else 24,
            scan_lists=120 if args.quick else 400,
            rounds=10 if args.quick else 25,
        )
        singleflight = bench_singleflight(
            distinct_keys=16 if args.quick else 48,
            threads=4,
            delay=0.01,
        )
        identity = bench_identity(index_dir, queries[: 12 if args.quick else 40],
                                  args.theta)
    finally:
        shutil.rmtree(base, ignore_errors=True)

    payload = {
        "benchmark": "bench_cache",
        "quick": args.quick,
        "texts": num_texts,
        "queries": num_queries,
        "theta": args.theta,
        "cpu_count": cpu_count,
        "block_tier": block,
        "admission": admission,
        "singleflight": singleflight,
        "identity": identity,
    }

    failures = []
    gates: dict = {}

    # Byte-identity binds at every scale: caching is a pure optimization.
    gates["results_identical"] = {"pass": identity["identical"]}
    if not identity["identical"]:
        failures.append("a cached configuration diverged from uncached search")

    reduction = block["decoded_reduction"]
    ok_block = reduction >= 3.0
    gates["decoded_bytes_reduction"] = {
        "ratio": reduction, "required": 3.0, "pass": ok_block,
    }
    if not ok_block:
        failures.append(
            f"block tier reduced decode work only {reduction:.2f}x (< 3x)"
        )

    lru_rate = admission["policies"]["lru"]["hit_rate"]
    lfu_rate = admission["policies"]["tinylfu"]["hit_rate"]
    ok_lfu = lfu_rate > lru_rate
    gates["tinylfu_beats_lru"] = {
        "lru_hit_rate": lru_rate,
        "tinylfu_hit_rate": lfu_rate,
        "pass": ok_lfu,
    }
    if not ok_lfu:
        failures.append(
            f"tinylfu hit rate {lfu_rate:.3f} not above lru {lru_rate:.3f}"
        )

    ratio = singleflight["qps_ratio"]
    if ratio >= 1.5:
        gates["singleflight_qps"] = {
            "ratio": ratio, "required": 1.5, "pass": True,
        }
    elif cpu_count < 4:
        gates["singleflight_qps"] = {
            "ratio": ratio,
            "required": 1.5,
            "skipped": (
                f"host has {cpu_count} cpu(s) for 4 threads; injected-I/O "
                "overlap fell short and the residual measures the "
                "scheduler, not the lock structure"
            ),
        }
        print(
            f"single-flight gate skipped: cpu_count={cpu_count} < 4 "
            f"(measured ratio {ratio:.2f})"
        )
    else:
        gates["singleflight_qps"] = {
            "ratio": ratio, "required": 1.5, "pass": False,
        }
        failures.append(f"single-flight qps ratio {ratio:.2f} < 1.5")

    payload["gates"] = gates
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
