"""Throughput benchmark: vectorized, pipelined index construction.

ISSUE 2 acceptance benchmark.  Measures the three layers of the build
pipeline on a synthetic corpus (paper Figure 2(i)-(l) workload shape):

* **Window generation** — tokens/sec of the k-wide vectorized generator
  (one ``(k, n)`` hash matrix, all ``k`` rows simultaneously) vs. the
  per-function monotone-stack loop, at ``k = 64``;
* **Build drivers** — end-to-end texts/sec of the streaming in-memory
  build and the bounded-in-flight process-pool build across a worker
  sweep;
* **External build** — wall seconds of the out-of-core build with and
  without the pipelined spill writer and pass-2 worker pool.

Run: ``PYTHONPATH=src python benchmarks/bench_build_throughput.py [--tiny]``
Writes ``BENCH_build_throughput.json`` next to the repository root.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.compact_windows import (
    generate_compact_windows_kwide,
    generate_compact_windows_stack,
)
from repro.core.hashing import HashFamily
from repro.corpus.synthetic import synthweb
from repro.index.builder import BuildStats, build_memory_index
from repro.index.external import ExternalBuildConfig, build_external_index
from repro.index.parallel import build_memory_index_parallel

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_build_throughput.json"

GENERATION_K = 64
FULL_WORKER_SWEEP = (1, 2, 4)
TINY_WORKER_SWEEP = (1, 2)


def make_corpus(tiny: bool):
    data = synthweb(
        num_texts=120 if tiny else 1200,
        mean_length=150 if tiny else 400,
        vocab_size=4096,
        duplicate_rate=0.15,
        span_length=64,
        mutation_rate=0.05,
        seed=21,
    )
    return data.corpus


def bench_generation(corpus, t: int, tiny: bool) -> dict:
    """Per-function stack loop vs. k-wide vectorized, same hash matrices."""
    family = HashFamily(k=GENERATION_K, seed=3)
    vocab_hashes = family.hash_vocabulary(4096)
    texts = [np.asarray(corpus[i]) for i in range(min(len(corpus), 400))]
    matrices = [vocab_hashes[:, tokens.astype(np.int64)] for tokens in texts]
    total_tokens = sum(tokens.size for tokens in texts)
    repeats = 1 if tiny else 3

    stack_seconds = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        stack_windows = 0
        for matrix in matrices:
            for func in range(GENERATION_K):
                stack_windows += generate_compact_windows_stack(matrix[func], t).size
        stack_seconds = min(stack_seconds, time.perf_counter() - begin)

    kwide_seconds = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        kwide_windows = 0
        for matrix in matrices:
            kwide_windows += sum(
                w.size for w in generate_compact_windows_kwide(matrix, t)
            )
        kwide_seconds = min(kwide_seconds, time.perf_counter() - begin)

    assert stack_windows == kwide_windows, "generators disagree on window count"
    return {
        "k": GENERATION_K,
        "texts": len(texts),
        "tokens": total_tokens,
        "windows": int(kwide_windows),
        "stack_seconds": stack_seconds,
        "kwide_seconds": kwide_seconds,
        "stack_tokens_per_sec": total_tokens / stack_seconds,
        "kwide_tokens_per_sec": total_tokens / kwide_seconds,
        "speedup": stack_seconds / kwide_seconds,
    }


def bench_workers(corpus, t: int, tiny: bool) -> list[dict]:
    """End-to-end build throughput across the worker sweep."""
    family = HashFamily(k=16 if tiny else 32, seed=9)
    rows = []
    baseline_seconds = None
    for workers in TINY_WORKER_SWEEP if tiny else FULL_WORKER_SWEEP:
        stats = BuildStats()
        begin = time.perf_counter()
        if workers == 1:
            index = build_memory_index(
                corpus, family, t, vocab_size=4096, stats=stats
            )
        else:
            index = build_memory_index_parallel(
                corpus, family, t, vocab_size=4096, workers=workers, stats=stats
            )
        wall = time.perf_counter() - begin
        if baseline_seconds is None:
            baseline_seconds = wall
        rows.append(
            {
                "workers": workers,
                "seconds": wall,
                "texts_per_sec": len(corpus) / wall,
                "generation_seconds": stats.generation_seconds,
                "merge_seconds": stats.merge_seconds,
                "postings": int(index.num_postings),
                "scaling_vs_1_worker": baseline_seconds / wall,
            }
        )
    return rows


def bench_external(corpus, t: int, tiny: bool) -> list[dict]:
    """Out-of-core build: plain vs. pipelined spill vs. pass-2 workers."""
    family = HashFamily(k=8 if tiny else 16, seed=13)
    variants = [
        ("sequential", ExternalBuildConfig(pipeline_spill=False)),
        ("pipelined_spill", ExternalBuildConfig(pipeline_spill=True)),
        (
            "pipelined+2_workers",
            ExternalBuildConfig(pipeline_spill=True, workers=2),
        ),
    ]
    rows = []
    for name, config in variants:
        with tempfile.TemporaryDirectory(prefix="bench_build_ext_") as tmp:
            begin = time.perf_counter()
            stats = build_external_index(
                corpus, family, t, Path(tmp) / "idx", vocab_size=4096, config=config
            )
            wall = time.perf_counter() - begin
        rows.append(
            {
                "variant": name,
                "workers": config.workers,
                "pipeline_spill": config.pipeline_spill,
                "seconds": wall,
                "generation_seconds": stats.generation_seconds,
                "aggregation_seconds": stats.aggregation_seconds,
                "io_seconds": stats.io_seconds,
                "bytes_written": stats.bytes_written,
                "windows": stats.windows_generated,
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true", help="CI smoke scale (seconds, not minutes)"
    )
    parser.add_argument("-t", type=int, default=25, help="length threshold")
    parser.add_argument("--output", default=str(OUTPUT))
    args = parser.parse_args(argv)

    corpus = make_corpus(args.tiny)
    print(f"corpus: {len(corpus)} texts, {corpus.total_tokens} tokens")

    generation = bench_generation(corpus, args.t, args.tiny)
    print(
        f"generation k={generation['k']}: stack {generation['stack_seconds']:.2f}s, "
        f"kwide {generation['kwide_seconds']:.2f}s, "
        f"speedup {generation['speedup']:.2f}x"
    )

    workers = bench_workers(corpus, args.t, args.tiny)
    print(f"{'workers':>8} {'seconds':>8} {'texts/s':>9} {'scaling':>8}")
    for row in workers:
        print(
            f"{row['workers']:>8} {row['seconds']:>8.2f} "
            f"{row['texts_per_sec']:>9.1f} {row['scaling_vs_1_worker']:>8.2f}"
        )

    external = bench_external(corpus, args.t, args.tiny)
    print(f"{'variant':>20} {'seconds':>8} {'gen_s':>7} {'agg_s':>7} {'io_s':>7}")
    for row in external:
        print(
            f"{row['variant']:>20} {row['seconds']:>8.2f} "
            f"{row['generation_seconds']:>7.2f} {row['aggregation_seconds']:>7.2f} "
            f"{row['io_seconds']:>7.2f}"
        )

    payload = {
        "benchmark": "bench_build_throughput",
        "tiny": args.tiny,
        "t": args.t,
        "corpus": {"texts": len(corpus), "tokens": int(corpus.total_tokens)},
        "generation": generation,
        "workers": workers,
        "external": external,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2))
    print(f"wrote {args.output}")

    # Acceptance gate (full scale only): >= 3x window-generation
    # throughput from the k-wide generator at k = 64.
    if not args.tiny:
        ok = generation["speedup"] >= 3.0
        print(
            f"acceptance: k-wide generation speedup {generation['speedup']:.2f}x "
            f"(>= 3 required) -> {'PASS' if ok else 'FAIL'}"
        )
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
