"""Table 1: example generated queries and their near-duplicates.

The paper's Table 1 lists generated snippets next to the near-duplicate
training sequences the algorithm found.  This bench regenerates the
table structure: (generated window, matched corpus span) pairs, shown
as token-id sequences (the synthetic corpus has no prose to decode).
"""

from __future__ import annotations

import numpy as np

from repro.core.search import NearDuplicateSearcher
from repro.lm.generation import GenerationConfig, generate
from repro.lm.models import train_model
from repro.memorization.evaluator import evaluate_generated_texts
from repro.memorization.report import table1_rows

from conftest import VOCAB_LARGE, print_series


def build_table(base_corpus, default_index):
    tier = train_model("xl", base_corpus.corpus, vocab_size=VOCAB_LARGE)
    config = GenerationConfig(strategy="top_k", top_k=50)
    texts = [generate(tier.model, 192, config=config, seed=s) for s in range(6)]
    searcher = NearDuplicateSearcher(default_index)
    report = evaluate_generated_texts(
        texts, searcher, theta=0.8, window_width=32, model_name="xl"
    )
    return table1_rows(report, base_corpus.corpus, limit=5)


def test_table1_examples(benchmark, base_corpus, default_index):
    rows = benchmark.pedantic(
        build_table, args=(base_corpus, default_index), rounds=1, iterations=1
    )
    assert rows, "no memorized examples found for Table 1"
    print("\n== Table 1: generated sequences and near-duplicates found ==")
    for number, row in enumerate(rows, start=1):
        query_preview = " ".join(str(t) for t in row.query_tokens[:12].tolist())
        match_preview = " ".join(str(t) for t in row.match_tokens[:12].tolist())
        overlap = len(
            set(row.query_tokens.tolist()) & set(row.match_tokens.tolist())
        )
        print(f"row {number}:")
        print(f"  generated ({row.query_tokens.size} tokens): {query_preview} ...")
        print(
            f"  near-duplicate: corpus text {row.match_text} tokens "
            f"{row.match_start}..{row.match_end}: {match_preview} ..."
        )
        print(f"  shared distinct tokens: {overlap}")
    benchmark.extra_info["rows"] = len(rows)

    # Every reported pair must actually share most of its vocabulary.
    for row in rows:
        shared = len(set(row.query_tokens.tolist()) & set(row.match_tokens.tolist()))
        assert shared >= 0.5 * len(set(row.query_tokens.tolist()))
