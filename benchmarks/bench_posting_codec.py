"""Posting-codec benchmark: format v2 (packed) vs. format v1 (raw).

ISSUE 5 acceptance benchmark, three measurements on a synthetic Zipf
corpus:

* **Payload size** — bytes of ``index.postings.bin`` written by each
  codec for the same index; the packed payload must be >= 2.5x smaller.
* **Decode throughput** — full-index decode (every list through
  :meth:`~repro.index.storage.DiskInvertedIndex.load_list`) in million
  postings/sec, packed vs. the raw memmap copy it replaces.
* **Cold-query p50/p95** — single-query latency through a freshly
  opened on-disk reader per codec (matches are asserted identical
  while measuring); the bet is that fewer bytes through the memmap
  more than pay for the unpack kernel.

Run: ``PYTHONPATH=src python benchmarks/bench_posting_codec.py [--quick]``
Writes ``BENCH_posting_codec.json`` next to the repository root.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.synthetic import synthweb
from repro.index.builder import build_memory_index
from repro.index.storage import DiskInvertedIndex, write_index

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_posting_codec.json"

#: Acceptance gate: packed payload must be at least this much smaller.
SIZE_GATE = 2.5


def build_workload(quick: bool):
    num_texts = 150 if quick else 2500
    data = synthweb(
        num_texts=num_texts,
        mean_length=160 if quick else 320,
        vocab_size=4096,
        duplicate_rate=0.35,
        span_length=64,
        mutation_rate=0.03,
        seed=29,
    )
    family = HashFamily(k=16 if quick else 32, seed=3)
    index = build_memory_index(data.corpus, family, t=25, vocab_size=4096)
    return data, family, index


def bench_size(index, base: Path) -> dict:
    """Write both codecs, compare payload bytes and write time."""
    out = {}
    for codec in ("raw", "packed"):
        directory = base / codec
        begin = time.perf_counter()
        write_index(index, directory, codec=codec)
        write_seconds = time.perf_counter() - begin
        payload = (directory / "index.postings.bin").stat().st_size
        out[codec] = {
            "payload_bytes": int(payload),
            "write_seconds": write_seconds,
            "bits_per_posting": 8 * payload / max(index.num_postings, 1),
        }
    out["size_ratio"] = (
        out["raw"]["payload_bytes"] / out["packed"]["payload_bytes"]
        if out["packed"]["payload_bytes"]
        else 0.0
    )
    return out


def bench_decode(base: Path, num_postings: int, repeats: int) -> dict:
    """Full-index decode throughput per codec (every list loaded once)."""
    out = {}
    for codec in ("raw", "packed"):
        reader = DiskInvertedIndex(base / codec)

        def run_decode():
            total = 0
            for func in range(reader.family.k):
                for minhash in reader.list_keys(func):
                    total += reader.load_list(func, int(minhash)).size
            return total

        assert run_decode() == num_postings  # warm page cache + sanity
        seconds = min(_timed(run_decode) for _ in range(repeats))
        out[codec] = {
            "seconds": seconds,
            "mpostings_per_s": num_postings / seconds / 1e6,
        }
    out["decode_slowdown"] = (
        out["packed"]["seconds"] / out["raw"]["seconds"]
        if out["raw"]["seconds"]
        else 0.0
    )
    return out


def _timed(fn) -> float:
    begin = time.perf_counter()
    fn()
    return time.perf_counter() - begin


def bench_cold_queries(data, base: Path, theta: float, num_queries: int) -> dict:
    """Per-query latency through a freshly opened reader per codec."""
    queries = [
        np.asarray(data.corpus[position % len(data.corpus)])[:64]
        for position in range(num_queries)
    ]
    out = {}
    results = {}
    for codec in ("raw", "packed"):
        # One fresh reader per codec: the memmap page cache is shared
        # with the OS, but directory parsing and block decodes are cold.
        searcher = NearDuplicateSearcher(DiskInvertedIndex(base / codec))
        latencies = []
        codec_results = []
        for query in queries:
            begin = time.perf_counter()
            result = searcher.search(query, theta)
            latencies.append(time.perf_counter() - begin)
            codec_results.append(result.matches)
        ordered = np.sort(latencies)
        results[codec] = codec_results
        out[codec] = {
            "queries": num_queries,
            "p50_ms": 1e3 * float(np.quantile(ordered, 0.50)),
            "p95_ms": 1e3 * float(np.quantile(ordered, 0.95)),
            "mean_ms": 1e3 * float(np.mean(ordered)),
        }
    assert results["raw"] == results["packed"], "codec search results diverge"
    out["p50_ratio_packed_vs_raw"] = (
        out["packed"]["p50_ms"] / out["raw"]["p50_ms"]
        if out["raw"]["p50_ms"]
        else 0.0
    )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke scale (seconds, not minutes)"
    )
    parser.add_argument("--theta", type=float, default=0.7)
    parser.add_argument("--output", default=str(OUTPUT))
    args = parser.parse_args(argv)

    data, family, index = build_workload(args.quick)
    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp)
        size = bench_size(index, base)
        decode = bench_decode(
            base, index.num_postings, repeats=2 if args.quick else 5
        )
        cold = bench_cold_queries(
            data, base, args.theta, 20 if args.quick else 100
        )

    print(
        f"size: raw {size['raw']['payload_bytes']} B "
        f"({size['raw']['bits_per_posting']:.1f} bits/posting), "
        f"packed {size['packed']['payload_bytes']} B "
        f"({size['packed']['bits_per_posting']:.1f} bits/posting) "
        f"-> {size['size_ratio']:.2f}x smaller"
    )
    print(
        f"decode: raw {decode['raw']['mpostings_per_s']:.1f} Mp/s, "
        f"packed {decode['packed']['mpostings_per_s']:.1f} Mp/s "
        f"({decode['decode_slowdown']:.2f}x slower)"
    )
    print(
        f"cold query p50: raw {cold['raw']['p50_ms']:.2f} ms, "
        f"packed {cold['packed']['p50_ms']:.2f} ms "
        f"(packed/raw {cold['p50_ratio_packed_vs_raw']:.2f})"
    )

    payload = {
        "benchmark": "bench_posting_codec",
        "quick": args.quick,
        "theta": args.theta,
        "num_postings": index.num_postings,
        "size": size,
        "decode": decode,
        "cold_query": cold,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2))
    print(f"wrote {args.output}")

    # Acceptance gate (full scale only): packed payload >= 2.5x smaller
    # than raw, with byte-identical search results (asserted above).
    if not args.quick:
        ok = size["size_ratio"] >= SIZE_GATE
        print(
            f"acceptance: size ratio {size['size_ratio']:.2f}x "
            f"(>= {SIZE_GATE} required) -> {'PASS' if ok else 'FAIL'}"
        )
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
