"""Figure 3(a,b,e,f): query latency and result counts vs k and theta.

Paper claims reproduced here:
  * query latency increases significantly as the similarity threshold
    decreases (more candidates survive the collision threshold);
  * the number of near-duplicates found grows as theta decreases, and
    exact duplicates (theta = 1) of model-generated text are rare;
  * there is no clear monotone trend between k and latency (prefix
    filtering power varies with k).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.index.builder import build_memory_index

from conftest import VOCAB_LARGE, print_series

THETAS = (1.0, 0.9, 0.8, 0.7)


def run_queries(searcher, queries, theta):
    """Average latency split and match counts over the query batch."""
    io = cpu = 0.0
    found = 0
    matched_queries = 0
    for query in queries:
        result = searcher.search(query, theta)
        io += result.stats.io_seconds
        cpu += result.stats.cpu_seconds
        found += result.num_texts
        matched_queries += bool(result.matches)
    n = len(queries)
    return {
        "io_ms": 1e3 * io / n,
        "cpu_ms": 1e3 * cpu / n,
        "found": found / n,
        "matched": matched_queries,
    }


@pytest.mark.parametrize("theta", THETAS)
def test_fig3ab_latency_and_matches_vs_theta(
    benchmark, default_index, generated_queries, theta
):
    """Figure 3(a,b): latency split and matches for each theta (k=32)."""
    searcher = NearDuplicateSearcher(default_index)
    summary = benchmark.pedantic(
        run_queries, args=(searcher, generated_queries, theta), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {k: round(v, 4) for k, v in summary.items()}
    )
    print_series(
        f"Fig 3(a,b) theta={theta}",
        ["theta", "io_ms", "cpu_ms", "avg_matches"],
        [(theta, summary["io_ms"], summary["cpu_ms"], summary["found"])],
    )


def test_fig3_lower_theta_costs_more(benchmark, default_index, generated_queries):
    """The headline Figure 3 trend, asserted end to end."""
    searcher = NearDuplicateSearcher(default_index)

    def both():
        return (
            run_queries(searcher, generated_queries, 1.0),
            run_queries(searcher, generated_queries, 0.7),
        )

    strict, loose = benchmark.pedantic(both, rounds=1, iterations=1)
    print_series(
        "Fig 3 trend",
        ["theta", "total_ms", "avg_matches"],
        [
            (1.0, strict["io_ms"] + strict["cpu_ms"], strict["found"]),
            (0.7, loose["io_ms"] + loose["cpu_ms"], loose["found"]),
        ],
    )
    assert loose["found"] >= strict["found"]
    assert loose["io_ms"] + loose["cpu_ms"] >= strict["io_ms"] + strict["cpu_ms"]


@pytest.mark.parametrize("k", [16, 32, 64])
def test_fig3ef_latency_vs_k(benchmark, base_corpus, generated_queries, k):
    """Figure 3(e,f): the k sweep (fresh index per k)."""
    index = build_memory_index(
        base_corpus.corpus, HashFamily(k=k, seed=5), t=25, vocab_size=VOCAB_LARGE
    )
    searcher = NearDuplicateSearcher(index)
    summary = benchmark.pedantic(
        run_queries, args=(searcher, generated_queries, 0.8), rounds=1, iterations=1
    )
    benchmark.extra_info.update({key: round(val, 4) for key, val in summary.items()})
    print_series(
        f"Fig 3(e,f) k={k}",
        ["k", "io_ms", "cpu_ms", "avg_matches"],
        [(k, summary["io_ms"], summary["cpu_ms"], summary["found"])],
    )


def test_fig3b_exact_duplicates_rare(benchmark, default_index, generated_queries):
    """Paper observation: generated text has few exact duplicates but
    noticeably more near-duplicates at theta = 0.7."""
    searcher = NearDuplicateSearcher(default_index)

    def both():
        return (
            run_queries(searcher, generated_queries, 1.0),
            run_queries(searcher, generated_queries, 0.7),
        )

    exact, near = benchmark.pedantic(both, rounds=1, iterations=1)
    print_series(
        "Fig 3(b) exact vs near",
        ["theta", "queries_matched", "avg_matches"],
        [(1.0, exact["matched"], exact["found"]), (0.7, near["matched"], near["found"])],
    )
    assert near["matched"] >= exact["matched"]
