"""Figure 2(i)-(l): index construction time, split generation vs I/O.

Paper claims reproduced here:
  * index time is linear in the corpus size and in k, and inversely
    (roughly) related to t;
  * the time decomposes into compact-window generation (CPU) and disk
    write-back (I/O), reported separately like the stacked bars.
"""

from __future__ import annotations

import pytest

from repro.core.hashing import HashFamily
from repro.index.builder import build_and_write_index

from conftest import SIZE_MULTIPLIERS, T_VALUES, VOCAB_LARGE, print_series


@pytest.mark.parametrize("t", T_VALUES)
def test_fig2i_index_time_vs_t(benchmark, base_corpus, tmp_path, t):
    """Figure 2(i): build time split for each length threshold."""
    family = HashFamily(k=2, seed=3)
    stats = benchmark.pedantic(
        build_and_write_index,
        args=(base_corpus.corpus, family, t, tmp_path / f"t{t}"),
        kwargs={"vocab_size": VOCAB_LARGE},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["generation_s"] = round(stats.generation_seconds, 4)
    benchmark.extra_info["io_s"] = round(stats.io_seconds, 4)
    print_series(
        f"Fig 2(i) t={t}",
        ["t", "generation_s", "io_s", "windows"],
        [(t, stats.generation_seconds, stats.io_seconds, stats.windows_generated)],
    )
    assert stats.generation_seconds > 0 and stats.io_seconds > 0


@pytest.mark.parametrize("k", [1, 2, 4])
def test_fig2j_index_time_vs_k(benchmark, base_corpus, tmp_path, k):
    """Figure 2(j): build time roughly linear in k."""
    stats = benchmark.pedantic(
        build_and_write_index,
        args=(base_corpus.corpus, HashFamily(k=k, seed=3), 50, tmp_path / f"k{k}"),
        kwargs={"vocab_size": VOCAB_LARGE},
        rounds=1,
        iterations=1,
    )
    print_series(
        f"Fig 2(j) k={k}",
        ["k", "total_s", "windows"],
        [(k, stats.total_seconds, stats.windows_generated)],
    )
    benchmark.extra_info["total_s"] = round(stats.total_seconds, 4)


@pytest.mark.parametrize("multiplier", SIZE_MULTIPLIERS)
def test_fig2kl_index_time_vs_corpus_size(
    benchmark, scaled_corpora, tmp_path, multiplier
):
    """Figure 2(k,l): build time linear in corpus size.

    The linearity assertion compares window *throughput* (windows per
    second) across sizes, which is scale-free and stable even on a
    noisy shared machine.
    """
    family = HashFamily(k=1, seed=3)
    corpus = scaled_corpora[multiplier]
    stats = benchmark.pedantic(
        build_and_write_index,
        args=(corpus, family, 50, tmp_path / f"s{multiplier}"),
        kwargs={"vocab_size": VOCAB_LARGE},
        rounds=1,
        iterations=1,
    )
    throughput = stats.windows_generated / stats.total_seconds
    benchmark.extra_info["throughput_wps"] = round(throughput)
    print_series(
        f"Fig 2(k,l) size={multiplier}x",
        ["size", "total_s", "windows", "windows_per_s"],
        [(f"{multiplier}x", stats.total_seconds, stats.windows_generated, throughput)],
    )
    assert throughput > 0
