"""The paper's headline claim: near-duplicates dwarf exact duplicates.

The abstract and Section 1 motivate the whole system with the gap
between *exact* memorization (what prior work measured: Lee et al.'s
"over 1% of tokens are part of memorized sequences") and *fuzzy*
memorization.  This benchmark runs both measurements on the same
generated texts:

  * exact — suffix-array substring lookup (verbatim occurrence);
  * near  — the compact-window engine at theta in {0.9, 0.8}.

and asserts the near-duplicate rate weakly dominates the exact rate,
with the gap visible whenever generation mutates even one token.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact_substring import SuffixArrayIndex
from repro.core.search import NearDuplicateSearcher
from repro.lm.generation import GenerationConfig, generate
from repro.lm.models import train_model
from repro.memorization.evaluator import sliding_queries

from conftest import VOCAB_LARGE, print_series


@pytest.fixture(scope="module")
def exact_index(base_corpus):
    return SuffixArrayIndex().build(base_corpus.corpus)


@pytest.fixture(scope="module")
def generation_windows(base_corpus):
    tier = train_model("xl", base_corpus.corpus, vocab_size=VOCAB_LARGE)
    config = GenerationConfig(strategy="top_k", top_k=50)
    windows = []
    for seed in range(6):
        text = generate(tier.model, 192, config=config, seed=400 + seed)
        windows.extend(sliding_queries(text, 32))
    return windows


def test_exact_vs_near_memorization(
    benchmark, default_index, exact_index, generation_windows
):
    searcher = NearDuplicateSearcher(default_index)

    def measure():
        exact_hits = sum(
            1 for window in generation_windows if exact_index.contains(window)
        )
        near_hits = {}
        for theta in (0.9, 0.8):
            near_hits[theta] = sum(
                1
                for window in generation_windows
                if searcher.search(window, theta, first_match_only=True).matches
            )
        return exact_hits, near_hits

    exact_hits, near_hits = benchmark.pedantic(measure, rounds=1, iterations=1)
    total = len(generation_windows)
    rows = [("exact (suffix array)", exact_hits, 100 * exact_hits / total)]
    for theta, hits in near_hits.items():
        rows.append((f"near theta={theta}", hits, 100 * hits / total))
    print_series(
        "Exact vs near-duplicate memorization",
        ["matcher", "hits", "pct"],
        rows,
    )
    benchmark.extra_info["exact_pct"] = round(100 * exact_hits / total, 2)
    benchmark.extra_info["near80_pct"] = round(100 * near_hits[0.8] / total, 2)
    # Near-duplicate matching can only find more: every exact match is
    # a theta=1.0 >= 0.8 near-duplicate of itself.
    assert near_hits[0.9] >= exact_hits
    assert near_hits[0.8] >= near_hits[0.9]


def test_exact_match_implies_near_match(
    benchmark, base_corpus, default_index, exact_index, generation_windows
):
    """Consistency: anything the suffix array finds, the engine finds at
    theta = 1.0 (its collision count is k on a verbatim copy)."""
    searcher = NearDuplicateSearcher(default_index)

    def check():
        verified = 0
        for window in generation_windows:
            if not exact_index.contains(window):
                continue
            result = searcher.search(window, 1.0)
            matched = {m.text_id for m in result.matches}
            exact_texts = {
                s.text_id for s in exact_index.find_occurrences(window)
            }
            assert exact_texts <= matched
            verified += 1
        return verified

    verified = benchmark.pedantic(check, rounds=1, iterations=1)
    benchmark.extra_info["verified_windows"] = verified


def test_duplication_count_probe(benchmark, base_corpus, exact_index):
    """Paper Section 1: corpora contain sequences duplicated many times;
    the suffix array counts exact duplication directly."""

    def measure():
        counts = []
        for plant in base_corpus.planted[:20]:
            span = np.asarray(base_corpus.corpus[plant.source_text])[
                plant.source_start : plant.source_start + min(plant.length, 32)
            ]
            counts.append(exact_index.count(span))
        return counts

    counts = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_series(
        "Exact duplication counts of planted spans",
        ["spans", "mean_count", "max_count"],
        [(len(counts), float(np.mean(counts)), int(np.max(counts)))],
    )
    assert min(counts) >= 1  # each span occurs at least once (itself)
