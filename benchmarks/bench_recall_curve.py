"""Choosing k: measured recall vs the binomial model (Section 3.2).

The paper argues that "for a large enough k, the near-duplicate
sequence approximate search guarantees to find most of the sequences
... similar to the query".  This bench quantifies "large enough": on
planted near-duplicate pairs of known similarity, it measures the
probability that the target is retrieved for each k and compares it
with the closed-form Binomial model — the curve a deployment reads to
budget its index.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.verify import Span, distinct_jaccard
from repro.memorization.metrics import recall_curve

from conftest import VOCAB_LARGE, print_series

K_VALUES = (8, 16, 32, 64)


@pytest.fixture(scope="module")
def planted_pairs(base_corpus):
    """(query, target-span) pairs of known high similarity."""
    pairs = []
    for plant in base_corpus.planted:
        query = np.asarray(base_corpus.corpus[plant.target_text])[
            plant.target_start : plant.target_start + plant.length
        ]
        source = np.asarray(base_corpus.corpus[plant.source_text])[
            plant.source_start : plant.source_start + plant.length
        ]
        if distinct_jaccard(query, source) >= 0.85:  # skip overwritten plants
            pairs.append(
                (
                    query,
                    Span(
                        plant.source_text,
                        plant.source_start,
                        plant.source_start + plant.length - 1,
                    ),
                )
            )
        if len(pairs) == 15:
            break
    return pairs


def test_recall_curve_vs_model(benchmark, base_corpus, planted_pairs):
    assert len(planted_pairs) >= 8
    rows = benchmark.pedantic(
        recall_curve,
        args=(base_corpus.corpus, planted_pairs, 0.8, 25),
        kwargs={"k_values": K_VALUES, "vocab_size": VOCAB_LARGE},
        rounds=1,
        iterations=1,
    )
    print_series(
        "Recall vs k (theta=0.8)",
        ["k", "measured", "binomial_model", "mean_jaccard"],
        [
            (row["k"], row["measured_recall"], row["modeled_recall"], row["mean_similarity"])
            for row in rows
        ],
    )
    benchmark.extra_info["recall_at_max_k"] = round(rows[-1]["measured_recall"], 3)
    # The model and the measurement agree within sampling noise at
    # every k, and recall at the largest k is near-perfect for these
    # high-similarity pairs.
    for row in rows:
        assert abs(row["measured_recall"] - row["modeled_recall"]) < 0.35
    assert rows[-1]["measured_recall"] >= 0.8
