"""Ablation: RMQ backend and window-generation strategy.

The paper replaces ALIGN's segment tree (O(n log n) total) with a
constant-time RMQ structure (O(n) total).  This ablation times compact-
window generation under each backend, plus the monotone-stack
formulation the library uses in production, on identical inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compact_windows import (
    generate_compact_windows,
    generate_compact_windows_stack,
)

from conftest import print_series

N_TOKENS = 40_000
T = 50


@pytest.fixture(scope="module")
def token_hashes():
    rng = np.random.default_rng(3)
    return rng.integers(0, 1 << 31, size=N_TOKENS).astype(np.uint32)


@pytest.mark.parametrize("backend", ["sparse", "segment", "block"])
def test_rmq_backend_generation(benchmark, token_hashes, backend):
    windows = benchmark.pedantic(
        generate_compact_windows,
        args=(token_hashes, T, backend),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["windows"] = len(windows)
    print_series(
        f"RMQ ablation backend={backend}",
        ["backend", "windows"],
        [(backend, len(windows))],
    )


def test_stack_generation(benchmark, token_hashes):
    windows = benchmark.pedantic(
        generate_compact_windows_stack, args=(token_hashes, T), rounds=2, iterations=1
    )
    benchmark.extra_info["windows"] = int(windows.size)
    print_series(
        "RMQ ablation backend=stack (production)",
        ["backend", "windows"],
        [("stack", int(windows.size))],
    )


def test_all_strategies_same_output(benchmark, token_hashes):
    """The ablation is fair: every strategy emits the identical set."""

    def cross_validate():
        reference = {
            (int(r["left"]), int(r["center"]), int(r["right"]))
            for r in generate_compact_windows_stack(token_hashes, T)
        }
        for backend in ("sparse", "segment", "block"):
            got = {
                (w.left, w.center, w.right)
                for w in generate_compact_windows(token_hashes, T, backend)
            }
            assert got == reference
        return len(reference)

    windows = benchmark.pedantic(cross_validate, rounds=1, iterations=1)
    benchmark.extra_info["windows"] = windows
