"""Second-dataset replication: the Pile stand-in ("MiniPile").

The paper evaluates on two datasets — OpenWebText and the Pile — and
the trends must hold on both.  These benchmarks rerun the core Figure 2
and Figure 3 sweeps on the MiniPile preset (a mixture of domains with
rotated Zipf heads, mirroring the Pile's 22 heterogeneous subsets) and
assert the same shapes as the SynthWeb runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.core.theory import expected_window_count, index_size_ratio_bound
from repro.corpus.corpus import corpus_nbytes
from repro.corpus.synthetic import minipile
from repro.index.builder import build_memory_index
from repro.lm.generation import GenerationConfig, generate
from repro.lm.models import train_model

from bench_fig3_query import run_queries
from conftest import BASE_TEXTS, MEAN_LENGTH, T_VALUES, VOCAB_LARGE, print_series


@pytest.fixture(scope="module")
def pile_corpus():
    return minipile(
        num_texts=BASE_TEXTS,
        mean_length=MEAN_LENGTH,
        vocab_size=VOCAB_LARGE,
        num_domains=4,
        duplicate_rate=0.2,
        seed=71,
    )


@pytest.fixture(scope="module")
def pile_index(pile_corpus):
    family = HashFamily(k=32, seed=15)
    return build_memory_index(pile_corpus.corpus, family, t=25, vocab_size=VOCAB_LARGE)


@pytest.fixture(scope="module")
def pile_queries(pile_corpus):
    """The paper's Pile protocol: GPT-Neo-style generations sliced into
    64-token windows."""
    tier = train_model("large", pile_corpus.corpus, vocab_size=VOCAB_LARGE)
    config = GenerationConfig(strategy="top_k", top_k=50)
    queries = []
    for seed in range(6):
        text = generate(tier.model, 256, config=config, seed=700 + seed)
        for start in range(0, text.size - 64 + 1, 64):
            queries.append(text[start : start + 64])
    return queries[:18]


@pytest.mark.parametrize("t", T_VALUES)
def test_minipile_window_count_vs_t(benchmark, pile_corpus, t):
    """Figure 2(b)/(f)-right: the Pile columns of the t sweep."""
    family = HashFamily(k=1, seed=15)
    index = benchmark.pedantic(
        build_memory_index,
        args=(pile_corpus.corpus, family, t),
        kwargs={"vocab_size": VOCAB_LARGE},
        rounds=1,
        iterations=1,
    )
    expected = sum(
        expected_window_count(text.size, t) for text in pile_corpus.corpus
    )
    print_series(
        f"MiniPile windows t={t}",
        ["t", "windows", "theory"],
        [(t, index.num_postings, round(expected))],
    )
    assert abs(index.num_postings - expected) < 0.15 * expected


def test_minipile_index_size_bound(benchmark, pile_corpus, tmp_path):
    """The 8/t size bound must hold on the heterogeneous corpus too."""
    from repro.index.storage import DiskInvertedIndex, write_index

    t = 50
    family = HashFamily(k=1, seed=15)
    index = build_memory_index(pile_corpus.corpus, family, t, vocab_size=VOCAB_LARGE)
    directory = benchmark.pedantic(
        write_index, args=(index, tmp_path / "mp"), rounds=1, iterations=1
    )
    nbytes = DiskInvertedIndex(directory).nbytes
    ratio = nbytes / corpus_nbytes(pile_corpus.corpus)
    print_series(
        "MiniPile index size",
        ["t", "ratio", "8/t bound"],
        [(t, ratio, index_size_ratio_bound(t))],
    )
    assert ratio <= index_size_ratio_bound(t) * 1.1


@pytest.mark.parametrize("theta", [1.0, 0.8, 0.7])
def test_minipile_query_latency_vs_theta(benchmark, pile_index, pile_queries, theta):
    """Figure 3(e,f): the Pile-side theta sweep."""
    searcher = NearDuplicateSearcher(pile_index)
    summary = benchmark.pedantic(
        run_queries, args=(searcher, pile_queries, theta), rounds=1, iterations=1
    )
    print_series(
        f"MiniPile theta={theta}",
        ["theta", "io_ms", "cpu_ms", "avg_matches"],
        [(theta, summary["io_ms"], summary["cpu_ms"], summary["found"])],
    )
    benchmark.extra_info["avg_matches"] = round(summary["found"], 3)


def test_minipile_theta_trend(benchmark, pile_index, pile_queries):
    searcher = NearDuplicateSearcher(pile_index)

    def both():
        return (
            run_queries(searcher, pile_queries, 1.0),
            run_queries(searcher, pile_queries, 0.7),
        )

    strict, loose = benchmark.pedantic(both, rounds=1, iterations=1)
    assert loose["found"] >= strict["found"]
    assert (
        loose["io_ms"] + loose["cpu_ms"] >= strict["io_ms"] + strict["cpu_ms"]
    )


def test_minipile_domain_skew(benchmark, pile_corpus):
    """The mixture still exhibits the Zipf skew prefix filtering needs,
    though flatter than a single-domain corpus (rotated heads)."""
    from repro.corpus.stats import frequency_profile

    profile = benchmark.pedantic(
        frequency_profile,
        args=(pile_corpus.corpus,),
        kwargs={"vocab_size": VOCAB_LARGE},
        rounds=1,
        iterations=1,
    )
    print_series(
        "MiniPile token skew",
        ["zipf_exponent", "top1_share", "top1pct_share"],
        [(profile.zipf_exponent, profile.top1_share, profile.top1pct_share)],
    )
    assert profile.is_skewed
