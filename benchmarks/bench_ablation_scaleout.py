"""Ablation: scale-out structures — sharding and incremental appends.

Quantifies the operational extensions:

  * a sharded index answers identically to the monolithic one while
    bounding per-shard memory (the multi-machine growth path the
    paper's parallel-build section gestures at);
  * incremental appends make new texts searchable without a rebuild,
    at a bounded query-side overhead until consolidation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.corpus import InMemoryCorpus
from repro.index.builder import build_memory_index
from repro.index.incremental import IncrementalIndex
from repro.index.sharded import ShardedIndex, ShardedSearcher

from bench_fig3_query import run_queries
from conftest import VOCAB_LARGE, print_series


@pytest.mark.parametrize("num_shards", [1, 2, 4, 8])
def test_sharded_query_overhead(
    benchmark, base_corpus, generated_queries, num_shards
):
    family = HashFamily(k=16, seed=5)
    sharded = ShardedIndex.build(
        base_corpus.corpus, family, 25, num_shards=num_shards, vocab_size=VOCAB_LARGE
    )
    searcher = ShardedSearcher(sharded)
    summary = benchmark.pedantic(
        run_queries, args=(searcher, generated_queries, 0.8), rounds=1, iterations=1
    )
    total = summary["io_ms"] + summary["cpu_ms"]
    benchmark.extra_info["total_ms"] = round(total, 3)
    print_series(
        f"Sharding shards={num_shards}",
        ["shards", "total_ms", "avg_matches"],
        [(num_shards, total, summary["found"])],
    )


def test_sharded_answers_match_monolithic(benchmark, base_corpus, generated_queries):
    family = HashFamily(k=16, seed=5)
    mono = build_memory_index(base_corpus.corpus, family, 25, vocab_size=VOCAB_LARGE)
    sharded = ShardedIndex.build(
        base_corpus.corpus, family, 25, num_shards=4, vocab_size=VOCAB_LARGE
    )

    def compare():
        plain = NearDuplicateSearcher(mono)
        fanout = ShardedSearcher(sharded)
        for query in generated_queries:
            a = plain.search(query, 0.8)
            b = fanout.search(query, 0.8)
            sa = {
                (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
                for m in a.matches
                for r in m.rectangles
            }
            sb = {
                (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
                for m in b.matches
                for r in m.rectangles
            }
            assert sa == sb

    benchmark.pedantic(compare, rounds=1, iterations=1)


def test_incremental_append_vs_rebuild(benchmark, base_corpus):
    """Appending 10% new texts must beat rebuilding the whole index."""
    import time

    family = HashFamily(k=16, seed=5)
    texts = [np.asarray(base_corpus.corpus[i]) for i in range(len(base_corpus.corpus))]
    split = int(0.9 * len(texts))
    initial = InMemoryCorpus(texts[:split])
    arrivals = texts[split:]

    main = build_memory_index(initial, family, 25, vocab_size=VOCAB_LARGE)

    def append_path():
        incremental = IncrementalIndex(main, VOCAB_LARGE, merge_threshold=10**9)
        incremental.append_texts(arrivals)
        return incremental

    start = time.perf_counter()
    rebuilt = build_memory_index(
        InMemoryCorpus(texts), family, 25, vocab_size=VOCAB_LARGE
    )
    rebuild_seconds = time.perf_counter() - start

    incremental = benchmark.pedantic(append_path, rounds=1, iterations=1)
    append_seconds = benchmark.stats.stats.mean
    print_series(
        "Incremental vs rebuild (10% new texts)",
        ["path", "seconds", "postings"],
        [
            ("rebuild", rebuild_seconds, rebuilt.num_postings),
            ("append", append_seconds, incremental.num_postings),
        ],
    )
    benchmark.extra_info["rebuild_s"] = round(rebuild_seconds, 3)
    assert incremental.num_postings == rebuilt.num_postings
    assert append_seconds < rebuild_seconds
