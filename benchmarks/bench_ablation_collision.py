"""Ablation: CollisionCount complexity in practice (Section 3.5).

The paper's complexity analysis puts CollisionCount at O(m² log m) for
a group of m compact windows but argues "the size of each compact
window group is usually small" so the cost is affordable.  This bench
validates both halves:

  * the group-size distribution observed while answering real queries
    is overwhelmingly tiny (the paper's premise);
  * runtime over synthetic groups grows superlinearly with m, but the
    m values that occur in practice keep it negligible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compact_windows import CompactWindow
from repro.core.intervals import collision_count
from repro.core.search import NearDuplicateSearcher

from conftest import print_series


def synthetic_group(m: int, seed: int) -> list[CompactWindow]:
    """m overlapping windows over a short region (the worst case)."""
    rng = np.random.default_rng(seed)
    windows = []
    for _ in range(m):
        left = int(rng.integers(0, 20))
        center = left + int(rng.integers(0, 10))
        right = center + int(rng.integers(0, 10))
        windows.append(CompactWindow(left, center, right))
    return windows


@pytest.mark.parametrize("m", [4, 16, 64, 256])
def test_collision_count_runtime_vs_group_size(benchmark, m):
    windows = synthetic_group(m, seed=m)
    rects = benchmark(collision_count, windows, max(2, m // 8))
    benchmark.extra_info["group_size"] = m
    benchmark.extra_info["rectangles"] = len(rects)


def test_observed_group_sizes_are_small(benchmark, default_index, generated_queries):
    """The paper's premise: real query groups are tiny."""
    searcher = NearDuplicateSearcher(default_index)

    def observe():
        sizes = []
        for query in generated_queries:
            sketch = searcher.family.sketch(np.asarray(query))
            chunks = []
            for func in range(searcher.family.k):
                postings = searcher.index.load_list(func, int(sketch[func]))
                if postings.size:
                    chunks.append(postings)
            if not chunks:
                continue
            merged = np.concatenate(chunks)
            _, counts = np.unique(merged["text"], return_counts=True)
            sizes.extend(counts.tolist())
        return np.array(sizes)

    sizes = benchmark.pedantic(observe, rounds=1, iterations=1)
    assert sizes.size > 0
    print_series(
        "Observed compact-window group sizes",
        ["groups", "mean", "p95", "max"],
        [
            (
                int(sizes.size),
                float(sizes.mean()),
                float(np.percentile(sizes, 95)),
                int(sizes.max()),
            )
        ],
    )
    benchmark.extra_info["mean_group"] = round(float(sizes.mean()), 2)
    # "Usually small": group sizes are bounded by a small multiple of k
    # (each function contributes one window per text plus a few extra
    # for repeated tokens) — independent of corpus size, so m^2 log m
    # stays negligible however large the corpus grows.
    assert float(np.percentile(sizes, 95)) <= 4 * searcher.family.k
    assert float(np.median(sizes)) <= searcher.family.k
