"""Ablations on the storage layer: zone-map step and external build.

  * Zone-map step size trades directory memory against point-read I/O:
    a smaller step reads fewer bytes per long-list probe.
  * The out-of-core hash-aggregation build pays a constant factor over
    the in-memory build (two passes over index-sized data) but keeps
    peak memory bounded by the partition budget — the paper's C4/Pile
    path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.index.builder import build_memory_index
from repro.index.external import ExternalBuildConfig, build_external_index
from repro.index.storage import DiskInvertedIndex, write_index

from conftest import VOCAB_LARGE, print_series


@pytest.fixture(scope="module")
def memory_index(base_corpus):
    family = HashFamily(k=8, seed=6)
    return build_memory_index(base_corpus.corpus, family, t=25, vocab_size=VOCAB_LARGE)


@pytest.mark.parametrize("step", [16, 64, 256])
def test_zonemap_step_io_tradeoff(benchmark, memory_index, tmp_path, step):
    directory = write_index(
        memory_index, tmp_path / f"zm{step}", zonemap_step=step, zonemap_min_list=64
    )
    disk = DiskInvertedIndex(directory)

    # Probe the longest list for texts it does and does not contain.
    func, minhash, postings = max(
        (
            (f, mh, p)
            for f in range(disk.family.k)
            for mh, p in memory_index.iter_lists(f)
        ),
        key=lambda item: item[2].size,
    )
    probe_texts = list(dict.fromkeys(postings["text"].tolist()))[:20]

    def probe():
        disk.io_stats.reset()
        for text_id in probe_texts:
            disk.load_text_windows(func, minhash, int(text_id))
        return disk.io_stats.bytes_read

    io_bytes = benchmark.pedantic(probe, rounds=3, iterations=1)
    benchmark.extra_info["io_bytes"] = io_bytes
    benchmark.extra_info["list_len"] = int(postings.size)
    print_series(
        f"Zone-map step={step}",
        ["step", "list_len", "probe_io_bytes"],
        [(step, int(postings.size), io_bytes)],
    )
    # Point reads must touch far less than re-reading the list each time.
    assert io_bytes < len(probe_texts) * postings.nbytes


def test_zonemap_smaller_step_reads_less(benchmark, memory_index, tmp_path):
    results = {}
    func, minhash, postings = max(
        (
            (f, mh, p)
            for f in range(memory_index.family.k)
            for mh, p in memory_index.iter_lists(f)
        ),
        key=lambda item: item[2].size,
    )
    probe_texts = list(dict.fromkeys(postings["text"].tolist()))[:20]

    def probe_both_steps():
        for step in (16, 256):
            directory = write_index(
                memory_index,
                tmp_path / f"cmp{step}",
                zonemap_step=step,
                zonemap_min_list=64,
            )
            disk = DiskInvertedIndex(directory)
            disk.io_stats.reset()
            for text_id in probe_texts:
                disk.load_text_windows(func, minhash, int(text_id))
            results[step] = disk.io_stats.bytes_read

    benchmark.pedantic(probe_both_steps, rounds=1, iterations=1)
    print_series(
        "Zone-map step trend",
        ["step", "probe_io_bytes"],
        [(s, results[s]) for s in sorted(results)],
    )
    assert results[16] <= results[256]


@pytest.mark.parametrize("batch_texts", [32, 128])
def test_external_build_cost(benchmark, base_corpus, tmp_path, batch_texts):
    """Out-of-core build: correct result, bounded memory, ~2x write volume."""
    from repro.corpus.store import DiskCorpus, write_corpus

    corpus_dir = write_corpus(base_corpus.corpus, tmp_path / f"c{batch_texts}")
    disk_corpus = DiskCorpus(corpus_dir)
    family = HashFamily(k=4, seed=6)
    stats = benchmark.pedantic(
        build_external_index,
        args=(disk_corpus, family, 25, tmp_path / f"x{batch_texts}"),
        kwargs={
            "vocab_size": VOCAB_LARGE,
            "config": ExternalBuildConfig(batch_texts=batch_texts, num_partitions=8),
        },
        rounds=1,
        iterations=1,
    )
    disk = DiskInvertedIndex(tmp_path / f"x{batch_texts}")
    reference = build_memory_index(
        base_corpus.corpus, family, t=25, vocab_size=VOCAB_LARGE
    )
    benchmark.extra_info["bytes_written"] = stats.bytes_written
    print_series(
        f"External build batch={batch_texts}",
        ["batch", "windows", "bytes_written", "final_bytes"],
        [(batch_texts, stats.windows_generated, stats.bytes_written, disk.nbytes)],
    )
    assert disk.num_postings == reference.num_postings
    assert stats.bytes_written >= 2 * disk.nbytes  # the two-pass cost
