"""Ablation / comparison: the paper's engine vs the alternative designs.

Quantifies the motivations stated in the paper's introduction and
related-work section:
  * brute-force enumeration is quadratic and collapses immediately —
    the compact-window index answers the same Definition 2 queries
    orders of magnitude faster;
  * a window-enumeration LSH index (the "datasketch-style" approach)
    stores an entry per window position vs 2/t windows per token, so
    its index is many times larger for equal k;
  * seed-and-extend misses mutation-dense near-duplicates entirely
    (recall failure), which the guaranteed algorithm finds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bruteforce import search_definition2
from repro.baselines.lsh import WindowLSHIndex
from repro.baselines.seed_extend import SeedExtendIndex
from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.core.verify import distinct_jaccard
from repro.corpus.corpus import InMemoryCorpus
from repro.index.builder import build_memory_index

from conftest import print_series


@pytest.fixture(scope="module")
def comparison_setup():
    """A corpus small enough for brute force yet with planted structure."""
    rng = np.random.default_rng(12)
    vocab = 500
    texts = [rng.integers(0, vocab, size=120).astype(np.uint32) for _ in range(20)]
    query = np.array(texts[0][20:84])
    mutated = np.array(query)
    mutated[::5] = rng.integers(0, vocab, size=mutated[::5].size)
    texts[7][10:74] = mutated  # near-duplicate, no long exact n-grams
    corpus = InMemoryCorpus(texts)
    family = HashFamily(k=16, seed=4)
    return corpus, family, query, vocab


def test_ours_vs_bruteforce_latency(benchmark, comparison_setup):
    corpus, family, query, vocab = comparison_setup
    index = build_memory_index(corpus, family, t=25, vocab_size=vocab)
    searcher = NearDuplicateSearcher(index)

    import time

    start = time.perf_counter()
    brute_spans = search_definition2(corpus, query, 0.7, 25, family)
    brute_seconds = time.perf_counter() - start

    result = benchmark.pedantic(
        searcher.search, args=(query, 0.7), rounds=3, iterations=1
    )
    ours_seconds = result.stats.total_seconds
    speedup = brute_seconds / max(ours_seconds, 1e-9)
    benchmark.extra_info["bruteforce_s"] = round(brute_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    print_series(
        "Ours vs brute force (same Definition 2 answers)",
        ["method", "seconds", "spans"],
        [
            ("bruteforce", brute_seconds, len(brute_spans)),
            ("compact-window index", ours_seconds, result.count_spans()),
        ],
    )
    # Identical answers, dramatically different cost.
    ours = {
        (m.text_id, i, j)
        for m in result.matches
        for rect in m.rectangles
        for (i, j) in rect.iter_spans(25)
    }
    assert ours == {(s.text_id, s.start, s.end) for s in brute_spans}
    assert speedup > 10


def test_index_size_vs_window_lsh(benchmark, comparison_setup):
    corpus, family, query, vocab = comparison_setup
    ours = build_memory_index(corpus, family, t=25, vocab_size=vocab)
    lsh = benchmark.pedantic(
        lambda: WindowLSHIndex(family, window=64, stride=1, bands=8, rows=2).build(
            corpus
        ),
        rounds=1,
        iterations=1,
    )
    positions = sum(max(0, t.size - 63) for t in corpus)
    print_series(
        "Index size: ours vs window-LSH",
        ["method", "entries", "note"],
        [
            ("compact windows", ours.num_postings, f"~2kN/t for N={corpus.total_tokens}"),
            ("window LSH", lsh.stats.index_entries, f"bands x {positions} positions"),
        ],
    )
    benchmark.extra_info["ours_entries"] = ours.num_postings
    benchmark.extra_info["lsh_entries"] = lsh.stats.index_entries
    # At stride 1 the enumeration index must be larger per hash budget.
    assert lsh.stats.index_entries > ours.num_postings / 2


def test_recall_vs_seed_extend(benchmark, comparison_setup):
    """The mutated copy defeats 8-gram seeds but not min-hash collisions."""
    corpus, family, query, vocab = comparison_setup
    index = build_memory_index(corpus, family, t=25, vocab_size=vocab)
    searcher = NearDuplicateSearcher(index)
    seed_index = SeedExtendIndex(seed_length=8).build(corpus)

    mutated_region = np.asarray(corpus[7])[10:74]
    true_sim = distinct_jaccard(query, mutated_region)
    assert true_sim >= 0.6

    ours = benchmark.pedantic(
        searcher.search, args=(query, 0.6), rounds=1, iterations=1
    )
    seed_spans = seed_index.query(corpus, query, theta=0.6, t=25)

    ours_texts = {m.text_id for m in ours.matches}
    seed_texts = {s.text_id for s in seed_spans}
    print_series(
        "Recall: ours vs seed-and-extend",
        ["method", "found_mutated_copy", "texts"],
        [
            ("compact windows", 7 in ours_texts, sorted(ours_texts)),
            ("seed-and-extend", 7 in seed_texts, sorted(seed_texts)),
        ],
    )
    assert 7 in ours_texts, "our engine must find the mutated near-duplicate"
    assert 7 not in seed_texts, "seed-and-extend should miss it (no shared 8-gram)"
