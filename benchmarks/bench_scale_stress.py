"""Scale stress: the largest corpus the harness exercises (~10⁶ tokens).

The other benchmarks stay small so the whole harness runs in minutes;
this module pushes one order of magnitude further to witness that the
linear-scaling story holds into the million-token regime in pure
Python — the regime ratio (10⁶ tokens here vs ~2×10¹¹ for the Pile) is
then bridged only by constants, not by asymptotics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.core.theory import expected_window_count
from repro.corpus.synthetic import zipf_corpus
from repro.index.builder import build_memory_index

from conftest import print_series

NUM_TEXTS = 2500
MEAN_LENGTH = 400
VOCAB = 16384
K = 8
T = 50


@pytest.fixture(scope="module")
def big_corpus():
    return zipf_corpus(NUM_TEXTS, MEAN_LENGTH, VOCAB, seed=3)


@pytest.fixture(scope="module")
def big_index(big_corpus):
    family = HashFamily(k=K, seed=1)
    return build_memory_index(big_corpus, family, t=T, vocab_size=VOCAB)


def test_build_million_tokens(benchmark, big_corpus):
    family = HashFamily(k=2, seed=2)
    index = benchmark.pedantic(
        build_memory_index,
        args=(big_corpus, family, T),
        kwargs={"vocab_size": VOCAB},
        rounds=1,
        iterations=1,
    )
    expected = 2 * sum(
        expected_window_count(text.size, T) for text in big_corpus
    )
    print_series(
        "Scale stress: build",
        ["tokens", "windows", "theory"],
        [(big_corpus.total_tokens, index.num_postings, round(expected))],
    )
    benchmark.extra_info["tokens"] = big_corpus.total_tokens
    benchmark.extra_info["windows"] = index.num_postings
    assert big_corpus.total_tokens >= 900_000
    assert abs(index.num_postings - expected) < 0.1 * expected


def test_query_latency_at_scale(benchmark, big_corpus, big_index):
    """Queries stay interactive against the million-token index."""
    searcher = NearDuplicateSearcher(big_index)
    rng = np.random.default_rng(8)
    queries = []
    for text_id in rng.choice(NUM_TEXTS, size=10, replace=False):
        text = np.asarray(big_corpus[int(text_id)])
        if text.size >= 64:
            queries.append(text[:64])

    def run():
        total = 0.0
        matched = 0
        for query in queries:
            result = searcher.search(query, 0.8)
            total += result.stats.total_seconds
            matched += result.num_texts
        return total / len(queries), matched

    mean_latency, matched = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        "Scale stress: query",
        ["queries", "mean_ms", "texts_matched"],
        [(len(queries), 1e3 * mean_latency, matched)],
    )
    benchmark.extra_info["mean_ms"] = round(1e3 * mean_latency, 2)
    assert matched >= len(queries)  # every query finds at least itself
    assert mean_latency < 1.0  # interactive even in pure Python


def test_self_recovery_at_scale(benchmark, big_corpus, big_index):
    """Exactness survives scale: verbatim spans match themselves."""
    searcher = NearDuplicateSearcher(big_index)
    rng = np.random.default_rng(12)

    def run():
        hits = 0
        trials = 0
        for text_id in rng.choice(NUM_TEXTS, size=15, replace=False):
            text = np.asarray(big_corpus[int(text_id)])
            if text.size < T + 10:
                continue
            start = int(rng.integers(0, text.size - T - 5))
            query = text[start : start + T + 5]
            trials += 1
            result = searcher.search(query, 1.0)
            if any(m.text_id == int(text_id) for m in result.matches):
                hits += 1
        return hits, trials

    hits, trials = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(
        "Scale stress: self-recovery",
        ["trials", "hits"],
        [(trials, hits)],
    )
    assert hits == trials
