"""Figure 3(d): query latency vs prefix length.

Paper claims reproduced here:
  * sweeping the prefix length (which fraction of the most frequent
    min-hash lists are treated as "long" and lazily point-read) keeps
    the total latency roughly flat, while the I/O share grows with the
    prefix length and the CPU share shrinks — the stacked-bar shape of
    Figure 3(d);
  * the answer set is identical at every prefix length (Theorem 2).
"""

from __future__ import annotations

import pytest

from repro.core.search import NearDuplicateSearcher
from repro.index.stats import cutoff_for_top_fraction

from bench_fig3_query import run_queries
from conftest import print_series

FRACTIONS = (0.05, 0.10, 0.15, 0.20)


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_fig3d_latency_vs_prefix_length(
    benchmark, default_index, generated_queries, fraction
):
    cutoff = cutoff_for_top_fraction(default_index, fraction)
    searcher = NearDuplicateSearcher(default_index, long_list_cutoff=cutoff)
    summary = benchmark.pedantic(
        run_queries, args=(searcher, generated_queries, 0.8), rounds=1, iterations=1
    )
    benchmark.extra_info["cutoff"] = cutoff
    benchmark.extra_info["io_ms"] = round(summary["io_ms"], 4)
    benchmark.extra_info["cpu_ms"] = round(summary["cpu_ms"], 4)
    print_series(
        f"Fig 3(d) prefix={int(fraction * 100)}%",
        ["prefix", "cutoff", "io_ms", "cpu_ms"],
        [(f"{int(fraction * 100)}%", cutoff, summary["io_ms"], summary["cpu_ms"])],
    )


def test_fig3d_prefix_mechanism(benchmark, default_index, generated_queries):
    """The mechanism behind the Figure 3(d) stacked bars.

    A longer prefix marks *more* lists as long: eager bytes drop (less
    sequential read / less CPU-side scanning) while the number of lazy
    long-list probes grows (more random point reads — which is what
    made the paper's wall-clock I/O grow with prefix length on a hard
    disk, even as the byte volume shrinks).
    """
    rows = []
    bytes_by_fraction = {}
    long_by_fraction = {}

    def sweep():
        for fraction in (0.05, 0.20):
            cutoff = cutoff_for_top_fraction(default_index, fraction)
            searcher = NearDuplicateSearcher(default_index, long_list_cutoff=cutoff)
            io_bytes = 0
            long_lists = 0
            for query in generated_queries:
                result = searcher.search(query, 0.8)
                io_bytes += result.stats.io_bytes
                long_lists += result.stats.long_lists
            bytes_by_fraction[fraction] = io_bytes
            long_by_fraction[fraction] = long_lists
            rows.append((f"{int(fraction * 100)}%", cutoff, io_bytes, long_lists))

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "Fig 3(d) mechanism",
        ["prefix", "cutoff", "io_bytes", "long_lists"],
        rows,
    )
    # Longer prefix -> smaller cutoff -> more lists filtered -> fewer
    # eager bytes but at least as many random long-list probes.
    assert bytes_by_fraction[0.20] <= bytes_by_fraction[0.05]
    assert long_by_fraction[0.20] >= long_by_fraction[0.05]


def test_fig3d_results_invariant(benchmark, default_index, generated_queries):
    """Theorem 2 across the prefix sweep: identical answers."""

    def sweep():
        reference = None
        for fraction in FRACTIONS:
            cutoff = cutoff_for_top_fraction(default_index, fraction)
            searcher = NearDuplicateSearcher(default_index, long_list_cutoff=cutoff)
            answers = []
            for query in generated_queries:
                result = searcher.search(query, 0.8)
                answers.append(
                    frozenset(
                        (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
                        for m in result.matches
                        for r in m.rectangles
                    )
                )
            if reference is None:
                reference = answers
            else:
                assert answers == reference

    benchmark.pedantic(sweep, rounds=1, iterations=1)
