"""Ablation: query-side optimizations beyond the paper's baseline engine.

Measures the two extensions this reproduction adds on top of the
paper's Algorithm 3:

  * **LRU list caching** — repeat queries (the memorization workload
    re-probes the Zipf-head lists constantly) skip I/O for cached
    lists;
  * **cost-model prefix planning** — choosing the prefix cutoff per
    query from the modeled I/O/CPU trade-off rather than a fixed
    fraction, while returning bit-identical answers.
"""

from __future__ import annotations

import pytest

from repro.core.search import NearDuplicateSearcher
from repro.index.cache import CachedIndexReader
from repro.index.costmodel import CostModelSearcher

from bench_fig3_query import run_queries
from conftest import print_series


def test_list_cache_hit_rate(benchmark, default_index, generated_queries):
    """Second pass over the query batch should be nearly I/O-free."""
    cached = CachedIndexReader(default_index, capacity_bytes=64 << 20)
    searcher = NearDuplicateSearcher(cached)

    def two_passes():
        run_queries(searcher, generated_queries, 0.8)
        first_pass_misses = cached.misses
        run_queries(searcher, generated_queries, 0.8)
        return first_pass_misses, cached.hits, cached.misses

    first_misses, hits, misses = benchmark.pedantic(
        two_passes, rounds=1, iterations=1
    )
    benchmark.extra_info["hit_rate"] = round(hits / max(hits + misses, 1), 3)
    print_series(
        "List cache",
        ["pass1_misses", "total_hits", "total_misses", "hit_rate"],
        [(first_misses, hits, misses, hits / max(hits + misses, 1))],
    )
    # Every list needed by pass 2 was already cached in pass 1.
    assert misses == first_misses


def test_cache_answers_identical(benchmark, default_index, generated_queries):
    plain = NearDuplicateSearcher(default_index)
    cached = NearDuplicateSearcher(CachedIndexReader(default_index))

    def compare():
        for query in generated_queries:
            a = plain.search(query, 0.8)
            b = cached.search(query, 0.8)
            sa = {
                (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
                for m in a.matches
                for r in m.rectangles
            }
            sb = {
                (m.text_id, r.i_lo, r.i_hi, r.j_lo, r.j_hi, r.count)
                for m in b.matches
                for r in m.rectangles
            }
            assert sa == sb

    benchmark.pedantic(compare, rounds=1, iterations=1)


def test_costmodel_vs_fixed_cutoffs(benchmark, default_index, generated_queries):
    """The planner must be competitive with the best fixed cutoff."""

    def measure_all():
        rows = []
        totals = {}
        for label, searcher in (
            ("no-filter", NearDuplicateSearcher(default_index, long_list_cutoff=0)),
            ("heuristic", NearDuplicateSearcher(default_index)),
            ("cost-model", CostModelSearcher(default_index)),
        ):
            summary = run_queries(searcher, generated_queries, 0.8)
            total = summary["io_ms"] + summary["cpu_ms"]
            totals[label] = total
            rows.append((label, summary["io_ms"], summary["cpu_ms"], total))
        return rows, totals

    rows, totals = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    print_series(
        "Prefix planning ablation",
        ["strategy", "io_ms", "cpu_ms", "total_ms"],
        rows,
    )
    benchmark.extra_info["totals"] = {k: round(v, 3) for k, v in totals.items()}
    # Sanity only (timing noise): the planner cannot be wildly worse.
    assert totals["cost-model"] < 5 * max(totals["no-filter"], totals["heuristic"])
