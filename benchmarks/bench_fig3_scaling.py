"""Figure 3(c,g,h): query latency vs corpus size and length threshold.

Paper claims reproduced here:
  * query latency grows linearly with the corpus size (inverted lists
    grow linearly, so both I/O and CPU do);
  * latency is inversely related to the length threshold t (larger t
    means fewer compact windows and shorter lists).
"""

from __future__ import annotations

import pytest

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.index.builder import build_memory_index

from bench_fig3_query import run_queries
from conftest import SIZE_MULTIPLIERS, T_VALUES, VOCAB_LARGE, print_series


@pytest.fixture(scope="module")
def scaled_indexes(scaled_corpora):
    family = HashFamily(k=16, seed=5)
    return {
        multiplier: build_memory_index(corpus, family, t=25, vocab_size=VOCAB_LARGE)
        for multiplier, corpus in scaled_corpora.items()
    }


@pytest.mark.parametrize("multiplier", SIZE_MULTIPLIERS)
def test_fig3cg_latency_vs_corpus_size(
    benchmark, scaled_indexes, generated_queries, multiplier
):
    """Figure 3(c,g): latency for 1x / 2x / 4x corpora."""
    searcher = NearDuplicateSearcher(scaled_indexes[multiplier])
    summary = benchmark.pedantic(
        run_queries, args=(searcher, generated_queries, 0.8), rounds=1, iterations=1
    )
    total = summary["io_ms"] + summary["cpu_ms"]
    benchmark.extra_info["total_ms"] = round(total, 3)
    print_series(
        f"Fig 3(c,g) size={multiplier}x",
        ["size", "io_ms", "cpu_ms", "total_ms"],
        [(f"{multiplier}x", summary["io_ms"], summary["cpu_ms"], total)],
    )


def test_fig3cg_latency_grows_with_size(benchmark, scaled_indexes, generated_queries):
    """Monotonicity assertion over the size sweep (loose: timing noise)."""
    totals = {}

    def sweep():
        for multiplier, index in scaled_indexes.items():
            searcher = NearDuplicateSearcher(index)
            # Average over two passes to damp scheduler noise.
            first = run_queries(searcher, generated_queries, 0.8)
            second = run_queries(searcher, generated_queries, 0.8)
            totals[multiplier] = (
                first["io_ms"] + first["cpu_ms"] + second["io_ms"] + second["cpu_ms"]
            ) / 2

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "Fig 3(c,g) trend",
        ["size", "total_ms"],
        [(f"{m}x", totals[m]) for m in sorted(totals)],
    )
    assert totals[max(totals)] > totals[min(totals)]


@pytest.mark.parametrize("t", T_VALUES)
def test_fig3h_latency_vs_length_threshold(
    benchmark, base_corpus, generated_queries, t
):
    """Figure 3(h): larger t -> smaller index -> faster queries."""
    index = build_memory_index(
        base_corpus.corpus, HashFamily(k=16, seed=5), t=t, vocab_size=VOCAB_LARGE
    )
    searcher = NearDuplicateSearcher(index)
    summary = benchmark.pedantic(
        run_queries, args=(searcher, generated_queries, 0.8), rounds=1, iterations=1
    )
    total = summary["io_ms"] + summary["cpu_ms"]
    benchmark.extra_info["total_ms"] = round(total, 3)
    benchmark.extra_info["index_postings"] = index.num_postings
    print_series(
        f"Fig 3(h) t={t}",
        ["t", "index_postings", "total_ms"],
        [(t, index.num_postings, total)],
    )


def test_fig3h_index_shrinks_with_t(benchmark, base_corpus):
    """The mechanism behind Figure 3(h): postings drop as t grows."""
    postings = {}

    def sweep():
        for t in T_VALUES:
            index = build_memory_index(
                base_corpus.corpus, HashFamily(k=4, seed=5), t=t, vocab_size=VOCAB_LARGE
            )
            postings[t] = index.num_postings

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "Fig 3(h) mechanism",
        ["t", "postings"],
        [(t, postings[t]) for t in T_VALUES],
    )
    assert postings[25] > postings[50] > postings[100]
