"""Scatter-gather router benchmark: fan-out vs. a serial shard loop.

ISSUE 7 acceptance benchmark.  Two sections:

**Remote fan-out** — a 4-shard fleet of real :class:`SearchService`
instances on loopback, queried two ways with the same stream:

* ``serial_loop`` — the pre-router deployment shape: one client asks
  each shard server *in turn* and merges client-side, so per-request
  latency is the **sum** of shard costs;
* ``router``      — the same requests through a :class:`RouterService`,
  which asks every shard concurrently over pooled keep-alive
  connections, so per-request latency is the **max** of shard costs.

Acceptance (full scale, >= 4 cores): router qps >= 2x the serial loop.
On smaller hosts the gate cannot bind physically (four shard servers
plus the router share the cores, and the fan-out's concurrency has
nowhere to run), so it is recorded as skipped with the measured
``cpu_count`` — the measured ratio is still written.

**In-process fan-out** — :class:`ShardedSearcher` over the same
4-shard partition, serial loop vs. ``workers=4`` thread fan-out
(byte-identical results, asserted in ``tests/test_sharded.py``).
Acceptance (full scale, >= 4 cores): ``workers=4`` qps >= 2x serial;
skipped with ``cpu_count`` recorded otherwise.

Run: ``PYTHONPATH=src python benchmarks/bench_router.py [--quick]``
Writes ``BENCH_router.json`` next to the repository root.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.hashing import HashFamily
from repro.corpus.corpus import InMemoryCorpus
from repro.corpus.synthetic import synthweb
from repro.engine import NearDupEngine
from repro.index.builder import build_memory_index
from repro.index.sharded import ShardedIndex, ShardedSearcher, shard_ranges
from repro.service import (
    RouterConfig,
    RouterService,
    ServiceClient,
    ServiceConfig,
    ServiceRunner,
    ShardEntry,
    ShardMap,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_router.json"

NUM_SHARDS = 4
WINDOW = 48


def build_corpus(quick: bool):
    data = synthweb(
        num_texts=160 if quick else 1200,
        mean_length=150 if quick else 250,
        vocab_size=2048,
        duplicate_rate=0.15,
        span_length=WINDOW,
        mutation_rate=0.05,
        seed=17,
    )
    return data.corpus


def make_queries(corpus, total: int, rng) -> list[list[int]]:
    """Window queries drawn from corpus texts (guaranteed hits)."""
    queries = []
    for text_id in rng.integers(0, len(corpus), size=total):
        text = np.asarray(corpus[int(text_id)])
        start = int(rng.integers(0, max(1, text.size - WINDOW)))
        queries.append(text[start : start + WINDOW].astype(np.uint32).tolist())
    return queries


def start_fleet(corpus, family: HashFamily, t: int):
    """Per-shard engines + ServiceRunners + a live router, all loopback."""
    runners = []
    entries = []
    vocab = 2048
    for shard_id, (start, count) in enumerate(
        shard_ranges(len(corpus), NUM_SHARDS)
    ):
        local = InMemoryCorpus(
            [np.asarray(corpus[start + offset]) for offset in range(count)]
        )
        index = build_memory_index(local, family, t, vocab_size=vocab)
        engine = NearDupEngine(local, index)
        runner = ServiceRunner(
            engine,
            ServiceConfig(port=0, workers=1, warmup_lists=32, linger_ms=0.0),
        ).start()
        runners.append(runner)
        entries.append(
            ShardEntry(f"shard{shard_id}", runner.host, runner.port, start, count)
        )
    shard_map = ShardMap(entries)
    router = RouterService(shard_map, RouterConfig(port=0))
    router_runner = ServiceRunner(service=router).start()
    return runners, router_runner, shard_map


def percentiles(latencies: list[float]) -> dict:
    observed = np.asarray(latencies)
    return {
        "p50": float(np.percentile(observed, 50)) * 1e3,
        "p95": float(np.percentile(observed, 95)) * 1e3,
        "mean": float(observed.mean()) * 1e3,
    }


def drive_serial_loop(shard_map, queries, theta: float) -> dict:
    """One client, each request asks every shard in turn (sum of costs)."""
    clients = [
        ServiceClient(entry.host, entry.port) for entry in shard_map
    ]
    latencies = []
    try:
        begin = time.perf_counter()
        for query in queries:
            start = time.perf_counter()
            merged = []
            for entry, client in zip(shard_map, clients):
                result = client.search(query, theta)["result"]
                for match in result["matches"]:
                    merged.append(match["text_id"] + entry.first_text)
            latencies.append(time.perf_counter() - start)
        wall = time.perf_counter() - begin
    finally:
        for client in clients:
            client.close()
    return {
        "scenario": "serial_loop",
        "requests": len(queries),
        "seconds": wall,
        "qps": len(queries) / wall if wall > 0 else 0.0,
        "latency_ms": percentiles(latencies),
    }


def drive_router(router_runner, queries, theta: float) -> dict:
    """The same stream through the scatter-gather router (max of costs)."""
    latencies = []
    with ServiceClient(router_runner.host, router_runner.port) as client:
        begin = time.perf_counter()
        for query in queries:
            start = time.perf_counter()
            client.search(query, theta)
            latencies.append(time.perf_counter() - start)
        wall = time.perf_counter() - begin
    return {
        "scenario": "router",
        "requests": len(queries),
        "seconds": wall,
        "qps": len(queries) / wall if wall > 0 else 0.0,
        "latency_ms": percentiles(latencies),
    }


def bench_sharded_searcher(corpus, family, t, queries, theta: float) -> dict:
    """In-process shard fan-out: serial loop vs. workers=4 threads."""
    sharded = ShardedIndex.build(
        corpus, family, t, num_shards=NUM_SHARDS, vocab_size=2048
    )
    tokenized = [np.asarray(query, dtype=np.uint32) for query in queries]

    def timed(searcher) -> float:
        begin = time.perf_counter()
        for query in tokenized:
            searcher.search(query, theta)
        return time.perf_counter() - begin

    serial = ShardedSearcher(sharded)
    serial_seconds = timed(serial)
    with ShardedSearcher(sharded, workers=NUM_SHARDS) as threaded:
        threaded_seconds = timed(threaded)
    total = len(tokenized)
    return {
        "requests": total,
        "serial_qps": total / serial_seconds if serial_seconds else 0.0,
        "workers4_qps": total / threaded_seconds if threaded_seconds else 0.0,
        "speedup": serial_seconds / threaded_seconds if threaded_seconds else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", "--smoke", dest="quick", action="store_true",
        help="CI scale (seconds, not minutes)",
    )
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--theta", type=float, default=0.8)
    parser.add_argument("--output", default=str(OUTPUT))
    args = parser.parse_args(argv)

    total = args.requests or (48 if args.quick else 400)
    cpu_count = os.cpu_count() or 1
    corpus = build_corpus(args.quick)
    family = HashFamily(k=16, seed=5)
    t = 25
    queries = make_queries(corpus, total, np.random.default_rng(0))

    runners, router_runner, shard_map = start_fleet(corpus, family, t)
    try:
        serial_row = drive_serial_loop(shard_map, queries, args.theta)
        router_row = drive_router(router_runner, queries, args.theta)
    finally:
        router_runner.stop()
        for runner in runners:
            runner.stop()

    fanout_speedup = (
        router_row["qps"] / serial_row["qps"] if serial_row["qps"] else 0.0
    )
    print(f"{'scenario':>12} {'qps':>8} {'p50_ms':>8} {'p95_ms':>8}")
    for row in (serial_row, router_row):
        print(
            f"{row['scenario']:>12} {row['qps']:>8.1f} "
            f"{row['latency_ms']['p50']:>8.2f} {row['latency_ms']['p95']:>8.2f}"
        )
    print(f"router fan-out speedup: {fanout_speedup:.2f}x over the serial loop")

    searcher_rows = bench_sharded_searcher(
        corpus, family, t, queries, args.theta
    )
    print(
        f"ShardedSearcher: serial {searcher_rows['serial_qps']:.1f} qps, "
        f"workers=4 {searcher_rows['workers4_qps']:.1f} qps "
        f"({searcher_rows['speedup']:.2f}x)"
    )

    payload = {
        "benchmark": "bench_router",
        "quick": args.quick,
        "requests": total,
        "num_shards": NUM_SHARDS,
        "cpu_count": cpu_count,
        "theta": args.theta,
        "rows": [serial_row, router_row],
        "router_fanout_speedup_qps": fanout_speedup,
        "sharded_searcher": searcher_rows,
    }

    # Acceptance gates.  Both compare a 4-way fan-out against a serial
    # loop over the same 4 shards, so both need >= 4 cores to be
    # physically attainable; on smaller hosts each gate is recorded as
    # skipped with the measured cpu_count (PR 6 convention) and the
    # measured speedups are still written above.
    failures = []
    if args.quick:
        payload["gates"] = {"skipped": "quick scale"}
        print(
            f"quick: router {fanout_speedup:.2f}x, "
            f"workers {searcher_rows['speedup']:.2f}x (gates skipped)"
        )
    else:
        gates: dict = {}
        if cpu_count >= 4:
            ok_router = fanout_speedup >= 2.0
            gates["router_fanout"] = {
                "speedup": fanout_speedup,
                "required": 2.0,
                "pass": ok_router,
            }
            if not ok_router:
                failures.append(
                    f"router fan-out speedup {fanout_speedup:.2f}x < 2.0x"
                )
            ok_workers = searcher_rows["speedup"] >= 2.0
            gates["sharded_workers"] = {
                "speedup": searcher_rows["speedup"],
                "required": 2.0,
                "pass": ok_workers,
            }
            if not ok_workers:
                failures.append(
                    f"ShardedSearcher workers=4 speedup "
                    f"{searcher_rows['speedup']:.2f}x < 2.0x"
                )
        else:
            reason = (
                f"host has {cpu_count} cpu(s); a {NUM_SHARDS}-way fan-out "
                "cannot reach 2x on < 4 cores"
            )
            gates["router_fanout"] = {
                "speedup": fanout_speedup,
                "required": 2.0,
                "skipped": reason,
            }
            gates["sharded_workers"] = {
                "speedup": searcher_rows["speedup"],
                "required": 2.0,
                "skipped": reason,
            }
            print(
                f"gates skipped: cpu_count={cpu_count} < 4 (measured "
                f"router {fanout_speedup:.2f}x, "
                f"workers {searcher_rows['speedup']:.2f}x recorded)"
            )
        payload["gates"] = gates

    Path(args.output).write_text(json.dumps(payload, indent=2))
    print(f"wrote {args.output}")
    if failures:
        for failure in failures:
            print(f"acceptance FAIL: {failure}")
        return 1
    if not args.quick:
        print("acceptance: all applicable gates PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
