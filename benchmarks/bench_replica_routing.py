"""Replica-aware routing benchmark: hedging + power-of-two vs. a tail.

ISSUE 9 acceptance benchmark.  The scenario the replica layer exists
for: every shard has one **degraded** replica (a real
:class:`SearchService` whose request path first awaits an injected
``asyncio.sleep`` — pure I/O wait, so the experiment is valid on a
single-core host) and one healthy replica.  Four configurations see
the identical query stream:

* ``all_healthy``            — 2 shards x 2 replicas, every replica at
  the small base delay; pick-first, no hedging.  The baseline.
* ``degraded_single_endpoint`` — the pre-replica deployment shape: a
  format-1-style map listing *only* the degraded replica of each
  shard.  Fan-out latency is the max over shards, so every request
  eats the injected delay; p99 must blow through the gate.
* ``degraded_hedged_p2c``    — the full replica map, power-of-two
  choices + auto (p95-derived) hedging.  The EWMA learns which replica
  is slow within the warmup and routes around it; hedges catch the
  residue.  p99 must hold within 2x the all-healthy baseline.
* ``degraded_hedged_pickfirst`` — pick-first *into* the degraded
  primary with a fixed hedge delay: every request hedges, the healthy
  replica wins the race, and the hedge win/loss counters prove it.

Acceptance (full mode — quick records the same rows without gating):

* ``degraded_single_endpoint`` p99  >  2x ``all_healthy`` p99,
* ``degraded_hedged_p2c``      p99 <=  2x ``all_healthy`` p99,
* ``degraded_hedged_pickfirst`` records ``hedge_wins >= 1``.

The delay injection sleeps on the event loop, so the gates bind on any
host with >= 1 cpu — this benchmark is expected to PASS, not skip.

Run: ``PYTHONPATH=src python benchmarks/bench_replica_routing.py [--quick]``
Writes ``BENCH_replica_routing.json`` next to the repository root.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.corpus.synthetic import synthweb
from repro.engine import NearDupEngine
from repro.service import (
    Replica,
    RouterConfig,
    RouterService,
    SearchService,
    ServiceClient,
    ServiceConfig,
    ServiceRunner,
    ShardEntry,
    ShardMap,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_replica_routing.json"

NUM_SHARDS = 2
WINDOW = 32
BASE_DELAY_S = 0.020  #: every replica's floor (keeps the baseline honest)
DEGRADED_DELAY_S = 0.150  #: injected on one replica per shard


class DelayedSearchService(SearchService):
    """A shard server whose request path first awaits ``delay_s``.

    The sleep happens on the event loop before routing, so it models a
    slow replica (GC pause, noisy neighbor, cold cache) as pure I/O
    wait — no CPU is burned, which keeps the experiment meaningful on
    a one-core host where real CPU contention could not be isolated.
    """

    def __init__(self, *args, delay_s: float = 0.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.delay_s = delay_s

    async def _route(self, method, path, body):
        if self.delay_s > 0:
            await asyncio.sleep(self.delay_s)
        return await super()._route(method, path, body)


def build_engine(quick: bool) -> NearDupEngine:
    data = synthweb(
        num_texts=80 if quick else 200,
        mean_length=120,
        vocab_size=1024,
        duplicate_rate=0.15,
        span_length=WINDOW,
        mutation_rate=0.05,
        seed=23,
    )
    return NearDupEngine.from_corpus(data.corpus, k=16, t=25)


def make_queries(corpus, total: int, rng) -> list[list[int]]:
    queries = []
    for text_id in rng.integers(0, len(corpus), size=total):
        text = np.asarray(corpus[int(text_id)])
        start = int(rng.integers(0, max(1, text.size - WINDOW)))
        queries.append(text[start : start + WINDOW].astype(np.uint32).tolist())
    return queries


def start_replicated_fleet(engine):
    """2 shards x 2 replicas, each replica a DelayedSearchService.

    Returns the replicated shard map, a degraded-only (single-endpoint)
    map over replica 0 of each shard, the runners, and the service
    objects keyed ``(shard, replica)`` so scenarios can retune delays.
    """
    from repro.corpus.corpus import InMemoryCorpus
    from repro.index.builder import build_memory_index
    from repro.index.sharded import shard_ranges

    runners = []
    services = {}
    entries = []
    degraded_entries = []
    for shard_id, (start, count) in enumerate(
        shard_ranges(engine.num_texts, NUM_SHARDS)
    ):
        local = InMemoryCorpus(
            [np.asarray(engine.corpus[start + off]) for off in range(count)]
        )
        index = build_memory_index(
            local, engine.index.family, engine.index.t, vocab_size=1024
        )
        shard_replicas = []
        for replica_id in range(2):
            service = DelayedSearchService(
                NearDupEngine(local, index),
                ServiceConfig(port=0, workers=1, warmup_lists=0, linger_ms=0.0),
                delay_s=BASE_DELAY_S,
            )
            runner = ServiceRunner(service=service).start()
            runners.append(runner)
            services[(shard_id, replica_id)] = service
            shard_replicas.append(Replica(runner.host, runner.port))
        entries.append(
            ShardEntry(
                name=f"shard{shard_id}",
                first_text=start,
                count=count,
                replicas=tuple(shard_replicas),
            )
        )
        degraded_entries.append(
            ShardEntry(
                name=f"shard{shard_id}",
                first_text=start,
                count=count,
                replicas=(shard_replicas[0],),
            )
        )
    return ShardMap(entries), ShardMap(degraded_entries), runners, services


def set_delays(services, primary_s: float, backup_s: float) -> None:
    for (shard_id, replica_id), service in services.items():
        service.delay_s = primary_s if replica_id == 0 else backup_s


def percentiles(latencies: list[float]) -> dict:
    observed = np.asarray(latencies)
    return {
        "p50": float(np.percentile(observed, 50)) * 1e3,
        "p95": float(np.percentile(observed, 95)) * 1e3,
        "p99": float(np.percentile(observed, 99)) * 1e3,
        "mean": float(observed.mean()) * 1e3,
    }


def drive(
    scenario: str,
    shard_map: ShardMap,
    queries,
    theta: float,
    *,
    warmup: int,
    **router_kwargs,
) -> dict:
    """One router configuration over the stream; warmup is untimed (it
    is where the EWMA and the auto hedge delay learn the fleet)."""
    router = RouterService(
        shard_map, RouterConfig(port=0, policy_seed=13, **router_kwargs)
    )
    runner = ServiceRunner(service=router).start()
    latencies = []
    try:
        with ServiceClient(runner.host, runner.port) as client:
            for query in queries[:warmup]:
                client.search(query, theta)
            begin = time.perf_counter()
            for query in queries[warmup:]:
                start = time.perf_counter()
                client.search(query, theta)
                latencies.append(time.perf_counter() - start)
            wall = time.perf_counter() - begin
        stats = router.stats.snapshot()
    finally:
        runner.stop()
    timed = len(queries) - warmup
    return {
        "scenario": scenario,
        "requests": timed,
        "seconds": wall,
        "qps": timed / wall if wall > 0 else 0.0,
        "latency_ms": percentiles(latencies),
        "hedges_fired": stats["hedges_fired"],
        "hedge_wins": stats["hedge_wins"],
        "hedge_losses": stats["hedges_fired"] - stats["hedge_wins"],
        "failovers": stats["failovers"],
        "breaker_trips": stats["breaker_trips"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", "--smoke", dest="quick", action="store_true",
        help="CI scale (seconds, not minutes); gates still bind",
    )
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--theta", type=float, default=0.8)
    parser.add_argument("--output", default=str(OUTPUT))
    args = parser.parse_args(argv)

    total = args.requests or (60 if args.quick else 240)
    warmup = max(10, total // 8)
    engine = build_engine(args.quick)
    queries = make_queries(
        engine.corpus, total + warmup, np.random.default_rng(0)
    )

    replicated_map, degraded_map, runners, services = start_replicated_fleet(
        engine
    )
    rows = []
    try:
        # 1. all replicas healthy: the baseline the gates compare against
        set_delays(services, BASE_DELAY_S, BASE_DELAY_S)
        rows.append(
            drive(
                "all_healthy",
                replicated_map,
                queries,
                args.theta,
                warmup=warmup,
                policy="pick-first",
            )
        )
        # 2..4. replica 0 of every shard degraded
        set_delays(services, DEGRADED_DELAY_S, BASE_DELAY_S)
        rows.append(
            drive(
                "degraded_single_endpoint",
                degraded_map,
                queries,
                args.theta,
                warmup=warmup,
                policy="pick-first",
            )
        )
        rows.append(
            drive(
                "degraded_hedged_p2c",
                replicated_map,
                queries,
                args.theta,
                warmup=warmup,
                policy="power-of-two",
                hedge_after_ms=0,  # auto: the shard's observed p95
            )
        )
        rows.append(
            drive(
                "degraded_hedged_pickfirst",
                replicated_map,
                queries,
                args.theta,
                warmup=warmup,
                policy="pick-first",
                hedge_after_ms=40.0,
            )
        )
    finally:
        for runner in runners:
            runner.stop()

    by_name = {row["scenario"]: row for row in rows}
    baseline_p99 = by_name["all_healthy"]["latency_ms"]["p99"]
    degraded_p99 = by_name["degraded_single_endpoint"]["latency_ms"]["p99"]
    hedged_p99 = by_name["degraded_hedged_p2c"]["latency_ms"]["p99"]
    hedge_wins = by_name["degraded_hedged_pickfirst"]["hedge_wins"]

    header = (
        f"{'scenario':>28} {'qps':>7} {'p50_ms':>8} {'p99_ms':>8} "
        f"{'hedges':>7} {'wins':>5}"
    )
    print(header)
    for row in rows:
        print(
            f"{row['scenario']:>28} {row['qps']:>7.1f} "
            f"{row['latency_ms']['p50']:>8.2f} "
            f"{row['latency_ms']['p99']:>8.2f} "
            f"{row['hedges_fired']:>7d} {row['hedge_wins']:>5d}"
        )

    # Acceptance gates.  The injected delay is event-loop sleep (no CPU),
    # so these bind regardless of core count — no skip path.
    gates = {
        "degraded_exceeds_2x_baseline": {
            "degraded_p99_ms": degraded_p99,
            "threshold_ms": 2.0 * baseline_p99,
            "pass": degraded_p99 > 2.0 * baseline_p99,
        },
        "hedged_p2c_holds_2x_baseline": {
            "hedged_p99_ms": hedged_p99,
            "threshold_ms": 2.0 * baseline_p99,
            "pass": hedged_p99 <= 2.0 * baseline_p99,
        },
        "hedge_wins_recorded": {
            "hedge_wins": hedge_wins,
            "pass": hedge_wins >= 1,
        },
    }
    failures = [name for name, gate in gates.items() if not gate["pass"]]

    payload = {
        "benchmark": "bench_replica_routing",
        "quick": args.quick,
        "requests": total,
        "warmup": warmup,
        "num_shards": NUM_SHARDS,
        "replicas_per_shard": 2,
        "cpu_count": os.cpu_count() or 1,
        "theta": args.theta,
        "base_delay_ms": 1e3 * BASE_DELAY_S,
        "degraded_delay_ms": 1e3 * DEGRADED_DELAY_S,
        "rows": rows,
        "gates": gates,
        "pass": not failures,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2))
    print(f"wrote {args.output}")
    if failures:
        for name in failures:
            print(f"acceptance FAIL: {name}: {gates[name]}")
        return 1
    print(
        f"acceptance PASS: baseline p99 {baseline_p99:.1f} ms, degraded "
        f"{degraded_p99:.1f} ms, hedged p2c {hedged_p99:.1f} ms, "
        f"{hedge_wins} hedge wins"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
