"""Service throughput benchmark: micro-batching, prefork, open time.

ISSUE 3 + ISSUE 6 acceptance benchmark.  Three sections:

**Micro-batching** (ISSUE 3) — a real :class:`SearchService` (an
in-process :class:`ServiceRunner`, real HTTP over loopback) driven by
blocking :class:`ServiceClient` threads — the closed-loop shape of a
memorization-audit fleet hammering one shared index:

* ``sequential``    — 1 client issuing every request back to back;
* ``concurrent_off``— 32 clients, micro-batching disabled
  (``max_batch=1``, zero linger): every request plans alone;
* ``concurrent_on`` — 32 clients, micro-batching enabled
  (``max_batch=32``, 8 ms linger): concurrent requests coalesce into
  planned executor batches, so sketch dedup and list pinning apply
  *across clients*.

The query stream is *bursty*, not uniformly duplicated: an audit
fleet's replicas work through the same generation windows at the same
time, so duplicate queries arrive concurrently.  Each fleet-wide round
of requests draws from a small per-round hot set (``clients/8``
distinct windows), which is exactly the cross-client redundancy
micro-batching exists to exploit — and the redundancy a per-request
path cannot see, cache-hot or not.

**Prefork scaling** (ISSUE 6) — the same closed-loop drive against a
real :class:`PreforkServer` fleet at equal offered load, 1 worker vs.
4 workers.  With the index served from the page-aligned mmap sidecar,
every worker shares one page-cache copy, so scaling is bounded by
cores, not memory.  Acceptance (full scale, >= 4 cores): 4-worker qps
>= 3x 1-worker qps with p95 no worse; on smaller hosts the gate is
recorded as skipped with the measured ``cpu_count``.

**Open time** (ISSUE 6) — ``DiskInvertedIndex`` open latency on a
packed index stored as the mmap sidecar vs. the legacy zipped ``.npz``
directory.  The sidecar open is O(TOC): parse a JSON header and map
the file; the ``.npz`` open decompresses every directory array.
Acceptance (full scale): sidecar open >= 10x faster.

Run: ``PYTHONPATH=src python benchmarks/bench_service.py [--smoke|--quick]``
Writes ``BENCH_service.json`` next to the repository root.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.hashing import HashFamily
from repro.corpus.synthetic import synthweb
from repro.engine import NearDupEngine
from repro.index.builder import build_memory_index
from repro.index.storage import DiskInvertedIndex, convert_directory, write_index
from repro.service import (
    PreforkServer,
    ServiceClient,
    ServiceConfig,
    ServiceRunner,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_service.json"

WINDOW = 64
CONCURRENT_CLIENTS = 32


def build_engine(smoke: bool) -> tuple[NearDupEngine, list[np.ndarray]]:
    """Disk-backed engine + duplicate-free window pool source."""
    num_texts = 120 if smoke else 1500
    data = synthweb(
        num_texts=num_texts,
        mean_length=200 if smoke else 300,
        vocab_size=4096,
        duplicate_rate=0.15,
        span_length=WINDOW,
        mutation_rate=0.05,
        seed=11,
    )
    family = HashFamily(k=16 if smoke else 32, seed=5)
    index = build_memory_index(data.corpus, family, t=25, vocab_size=4096)
    directory = Path(tempfile.mkdtemp(prefix="bench_service_"))
    write_index(index, directory)
    engine = NearDupEngine(data.corpus, DiskInvertedIndex(directory))

    windows: list[np.ndarray] = []
    for text_id in range(len(data.corpus)):
        text = np.asarray(data.corpus[text_id])
        for start in range(0, text.size - WINDOW + 1, WINDOW):
            windows.append(text[start : start + WINDOW])
    return engine, windows


def make_queries(windows, total: int, clients: int, rng) -> list[np.ndarray]:
    """A bursty duplicate-heavy request stream.

    The stream is built in fleet-wide rounds of ``clients`` requests;
    each round samples with replacement from a fresh hot set of
    ``clients/8`` distinct windows.  Sharded round-robin across the
    client threads, one round's requests are issued concurrently — the
    duplication lands inside the micro-batcher's coalescing window,
    where real audit sweeps put it.
    """
    rounds = (total + clients - 1) // clients
    hot_size = max(1, clients // 8)
    stream: list[np.ndarray] = []
    for _ in range(rounds):
        hot = [
            windows[i]
            for i in rng.choice(len(windows), min(hot_size, len(windows)),
                                replace=False)
        ]
        stream.extend(hot[i] for i in rng.integers(0, len(hot), size=clients))
    return stream[:total]


def drive_closed_loop(
    host: str,
    port: int,
    queries: list[np.ndarray],
    clients: int,
    theta: float,
) -> tuple[float, list[float]]:
    """Shard ``queries`` round-robin over ``clients`` closed-loop threads."""
    shards = [queries[position::clients] for position in range(clients)]
    latencies: list[float] = []
    errors: list[BaseException] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def drive(shard: list[np.ndarray]) -> None:
        try:
            with ServiceClient(host, port) as client:
                barrier.wait()
                for tokens in shard:
                    begin = time.perf_counter()
                    client.search(tokens, theta)
                    elapsed = time.perf_counter() - begin
                    with lock:
                        latencies.append(elapsed)
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [threading.Thread(target=drive, args=(shard,)) for shard in shards]
    for thread in threads:
        thread.start()
    barrier.wait()
    begin = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - begin
    if errors:
        raise errors[0]
    return wall, latencies


def run_scenario(
    engine: NearDupEngine,
    queries: list[np.ndarray],
    *,
    name: str,
    clients: int,
    max_batch: int,
    linger_ms: float,
    workers: int,
    theta: float,
) -> dict:
    """One fresh service instance, closed-loop clients, wall-clock qps."""
    config = ServiceConfig(
        port=0,
        workers=workers,
        max_batch=max_batch,
        linger_ms=linger_ms,
        max_queue=max(256, 2 * clients),
        warmup_lists=64,
    )
    with ServiceRunner(engine, config) as runner:
        wall, latencies = drive_closed_loop(
            runner.host, runner.port, queries, clients, theta
        )
        snapshot = runner.call(runner.service.stats.snapshot)
        cache = runner.call(lambda: runner.service.searcher.index.stats().to_dict())

    observed = np.asarray(latencies)
    return {
        "scenario": name,
        "clients": clients,
        "max_batch": max_batch,
        "linger_ms": linger_ms,
        "requests": len(queries),
        "seconds": wall,
        "qps": len(queries) / wall if wall > 0 else 0.0,
        "latency_ms": {
            "p50": float(np.percentile(observed, 50)) * 1e3,
            "p95": float(np.percentile(observed, 95)) * 1e3,
            "mean": float(observed.mean()) * 1e3,
        },
        "mean_batch_size": snapshot["mean_batch_size"],
        "batches": snapshot["batches"],
        "cache_hit_rate": cache["hit_rate"],
    }


def run_prefork_scenario(
    engine: NearDupEngine,
    queries: list[np.ndarray],
    *,
    name: str,
    clients: int,
    procs: int,
    max_batch: int,
    linger_ms: float,
    workers: int,
    theta: float,
) -> dict:
    """A real forked fleet over the shared mapping, equal offered load."""
    config = ServiceConfig(
        port=0,
        procs=procs,
        workers=workers,
        max_batch=max_batch,
        linger_ms=linger_ms,
        max_queue=max(256, 2 * clients),
        warmup_lists=64,
    )
    server = PreforkServer(engine, config)
    server.start()
    try:
        server.wait_ready()
        wall, latencies = drive_closed_loop(
            "127.0.0.1", server.port, queries, clients, theta
        )
        with ServiceClient("127.0.0.1", server.port, timeout=15) as client:
            cluster = client.stats().get("cluster", {})
    finally:
        server.stop()
    observed = np.asarray(latencies)
    return {
        "scenario": name,
        "clients": clients,
        "procs": procs,
        "max_batch": max_batch,
        "linger_ms": linger_ms,
        "requests": len(queries),
        "seconds": wall,
        "qps": len(queries) / wall if wall > 0 else 0.0,
        "latency_ms": {
            "p50": float(np.percentile(observed, 50)) * 1e3,
            "p95": float(np.percentile(observed, 95)) * 1e3,
            "mean": float(observed.mean()) * 1e3,
        },
        "cluster_completed": cluster.get("completed", 0),
        "cluster_alive": cluster.get("alive", 0),
    }


def bench_open_time(smoke: bool) -> dict:
    """Min open latency of a packed index: mmap sidecar vs. zipped npz."""
    num_texts = 300 if smoke else 3000
    data = synthweb(
        num_texts=num_texts,
        mean_length=200,
        vocab_size=4096,
        duplicate_rate=0.1,
        span_length=WINDOW,
        mutation_rate=0.05,
        seed=23,
    )
    family = HashFamily(k=16 if smoke else 32, seed=7)
    index = build_memory_index(data.corpus, family, t=25, vocab_size=4096)
    sidecar_dir = Path(tempfile.mkdtemp(prefix="bench_open_sidecar_"))
    write_index(index, sidecar_dir, codec="packed", dir_format="sidecar")
    npz_dir = Path(tempfile.mkdtemp(prefix="bench_open_npz_"))
    for path in sidecar_dir.iterdir():
        shutil.copy2(path, npz_dir / path.name)
    convert_directory(npz_dir, "npz")

    def min_open_seconds(directory: Path, reps: int = 7) -> float:
        best = float("inf")
        for _ in range(reps):
            begin = time.perf_counter()
            opened = DiskInvertedIndex(directory)
            best = min(best, time.perf_counter() - begin)
            del opened
        return best

    sidecar_open = min_open_seconds(sidecar_dir)
    npz_open = min_open_seconds(npz_dir)
    directory_bytes = sum(
        path.stat().st_size
        for path in sidecar_dir.iterdir()
        if path.name == "index.dir.bin"
    )
    shutil.rmtree(sidecar_dir)
    shutil.rmtree(npz_dir)
    return {
        "num_texts": num_texts,
        "sidecar_bytes": directory_bytes,
        "sidecar_open_s": sidecar_open,
        "npz_open_s": npz_open,
        "open_speedup": npz_open / sidecar_open if sidecar_open > 0 else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", "--quick", dest="smoke", action="store_true",
        help="CI scale (seconds, not minutes)",
    )
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--prefork-workers", type=int, default=4,
        help="fleet size of the scaled prefork scenario",
    )
    parser.add_argument("--theta", type=float, default=0.8)
    parser.add_argument("--output", default=str(OUTPUT))
    args = parser.parse_args(argv)

    total = args.requests or (96 if args.smoke else 512)
    engine, windows = build_engine(args.smoke)
    queries = make_queries(
        windows, total, CONCURRENT_CLIENTS, np.random.default_rng(0)
    )

    # The ON batch size is clients/workers, not clients: closed-loop
    # clients re-request in lock-step, so a batch as large as the whole
    # fleet leaves every other worker thread idle.  Halving it keeps
    # one batch per worker in flight — coalescing *and* parallelism.
    on_batch = max(2, CONCURRENT_CLIENTS // args.workers)
    scenarios = [
        dict(name="sequential", clients=1, max_batch=on_batch, linger_ms=8.0),
        dict(name="concurrent_off", clients=CONCURRENT_CLIENTS, max_batch=1,
             linger_ms=0.0),
        dict(name="concurrent_on", clients=CONCURRENT_CLIENTS,
             max_batch=on_batch, linger_ms=8.0),
    ]
    rows = []
    print(
        f"{'scenario':>15} {'clients':>8} {'qps':>8} {'p50_ms':>8} "
        f"{'p95_ms':>8} {'batch':>6} {'cache':>6}"
    )
    for scenario in scenarios:
        row = run_scenario(
            engine, queries, workers=args.workers, theta=args.theta, **scenario
        )
        rows.append(row)
        print(
            f"{row['scenario']:>15} {row['clients']:>8} {row['qps']:>8.1f} "
            f"{row['latency_ms']['p50']:>8.2f} {row['latency_ms']['p95']:>8.2f} "
            f"{row['mean_batch_size']:>6.2f} {row['cache_hit_rate']:>6.2f}"
        )

    # -- prefork scaling: 1 worker vs. N workers, equal offered load --
    cpu_count = os.cpu_count() or 1
    fleet = args.prefork_workers
    prefork_rows = []
    for procs in (1, fleet):
        row = run_prefork_scenario(
            engine,
            queries,
            name=f"prefork_{procs}",
            clients=CONCURRENT_CLIENTS,
            procs=procs,
            max_batch=on_batch,
            linger_ms=8.0,
            workers=args.workers,
            theta=args.theta,
        )
        prefork_rows.append(row)
        print(
            f"{row['scenario']:>15} {row['clients']:>8} {row['qps']:>8.1f} "
            f"{row['latency_ms']['p50']:>8.2f} {row['latency_ms']['p95']:>8.2f} "
            f"{'':>6} {'':>6}"
        )
    prefork_single, prefork_scaled = prefork_rows
    prefork_speedup = (
        prefork_scaled["qps"] / prefork_single["qps"]
        if prefork_single["qps"]
        else 0.0
    )

    # -- open time: mmap sidecar vs. zipped npz ------------------------
    open_times = bench_open_time(args.smoke)
    print(
        f"open time (packed index): sidecar {open_times['sidecar_open_s'] * 1e3:.2f} ms, "
        f"npz {open_times['npz_open_s'] * 1e3:.2f} ms "
        f"({open_times['open_speedup']:.1f}x)"
    )

    on = next(row for row in rows if row["scenario"] == "concurrent_on")
    off = next(row for row in rows if row["scenario"] == "concurrent_off")
    speedup = on["qps"] / off["qps"] if off["qps"] else 0.0
    payload = {
        "benchmark": "bench_service",
        "smoke": args.smoke,
        "requests": total,
        "workers": args.workers,
        "prefork_workers": fleet,
        "cpu_count": cpu_count,
        "theta": args.theta,
        "rows": rows + prefork_rows,
        "batching_speedup_qps": speedup,
        "prefork_speedup_qps": prefork_speedup,
        "prefork_p95_ms": {
            "single": prefork_single["latency_ms"]["p95"],
            "scaled": prefork_scaled["latency_ms"]["p95"],
        },
        "open_time": open_times,
    }

    # Acceptance gates.  The batching and prefork gates bind at full
    # scale only; the prefork gate additionally needs enough cores to
    # be physically attainable — a 4-worker fleet cannot triple qps on
    # fewer than 4 cores, so on smaller hosts it is recorded as
    # skipped (with the measured cpu_count) rather than failed.
    failures = []
    if args.smoke:
        payload["gates"] = {"skipped": "smoke scale"}
        print(
            f"smoke: batching {speedup:.2f}x, prefork x{fleet} "
            f"{prefork_speedup:.2f}x, open {open_times['open_speedup']:.1f}x "
            "(gates skipped)"
        )
    else:
        gates: dict = {}
        ok_batching = speedup >= 1.5
        gates["batching"] = {"speedup": speedup, "required": 1.5, "pass": ok_batching}
        if not ok_batching:
            failures.append(f"batching speedup {speedup:.2f}x < 1.5x")
        if cpu_count >= 4:
            p95_ok = (
                prefork_scaled["latency_ms"]["p95"]
                <= 1.10 * prefork_single["latency_ms"]["p95"]
            )
            ok_prefork = prefork_speedup >= 3.0 and p95_ok
            gates["prefork"] = {
                "speedup": prefork_speedup,
                "required": 3.0,
                "p95_no_worse": p95_ok,
                "pass": ok_prefork,
            }
            if not ok_prefork:
                failures.append(
                    f"prefork x{fleet} speedup {prefork_speedup:.2f}x / "
                    f"p95_no_worse={p95_ok} (>= 3.0x and no-worse p95 required)"
                )
        else:
            gates["prefork"] = {
                "speedup": prefork_speedup,
                "required": 3.0,
                "skipped": f"host has {cpu_count} cpu(s); a {fleet}-worker "
                "fleet cannot reach 3x on < 4 cores",
            }
            print(
                f"prefork gate skipped: cpu_count={cpu_count} < 4 "
                f"(measured {prefork_speedup:.2f}x recorded)"
            )
        ok_open = open_times["open_speedup"] >= 10.0
        gates["open_time"] = {
            "speedup": open_times["open_speedup"],
            "required": 10.0,
            "pass": ok_open,
        }
        if not ok_open:
            failures.append(
                f"sidecar open speedup {open_times['open_speedup']:.1f}x < 10x"
            )
        payload["gates"] = gates

    Path(args.output).write_text(json.dumps(payload, indent=2))
    print(f"wrote {args.output}")
    if failures:
        for failure in failures:
            print(f"acceptance FAIL: {failure}")
        return 1
    if not args.smoke:
        print("acceptance: all applicable gates PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
