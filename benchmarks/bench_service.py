"""Service throughput benchmark: micro-batching on vs. off.

ISSUE 3 acceptance benchmark.  Runs a real :class:`SearchService` (an
in-process :class:`ServiceRunner`, real HTTP over loopback) and drives
it with blocking :class:`ServiceClient` threads — the closed-loop shape
of a memorization-audit fleet hammering one shared index:

* ``sequential``    — 1 client issuing every request back to back;
* ``concurrent_off``— 32 clients, micro-batching disabled
  (``max_batch=1``, zero linger): every request plans alone;
* ``concurrent_on`` — 32 clients, micro-batching enabled
  (``max_batch=32``, 8 ms linger): concurrent requests coalesce into
  planned executor batches, so sketch dedup and list pinning apply
  *across clients*.

The query stream is *bursty*, not uniformly duplicated: an audit
fleet's replicas work through the same generation windows at the same
time, so duplicate queries arrive concurrently.  Each fleet-wide round
of requests draws from a small per-round hot set (``clients/8``
distinct windows), which is exactly the cross-client redundancy
micro-batching exists to exploit — and the redundancy a per-request
path cannot see, cache-hot or not.

Run: ``PYTHONPATH=src python benchmarks/bench_service.py [--smoke]``
Writes ``BENCH_service.json`` next to the repository root.
Acceptance (full scale): concurrent_on >= 1.5x concurrent_off qps.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.hashing import HashFamily
from repro.corpus.synthetic import synthweb
from repro.engine import NearDupEngine
from repro.index.builder import build_memory_index
from repro.index.storage import DiskInvertedIndex, write_index
from repro.service import ServiceClient, ServiceConfig, ServiceRunner

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_service.json"

WINDOW = 64
CONCURRENT_CLIENTS = 32


def build_engine(smoke: bool) -> tuple[NearDupEngine, list[np.ndarray]]:
    """Disk-backed engine + duplicate-free window pool source."""
    num_texts = 120 if smoke else 1500
    data = synthweb(
        num_texts=num_texts,
        mean_length=200 if smoke else 300,
        vocab_size=4096,
        duplicate_rate=0.15,
        span_length=WINDOW,
        mutation_rate=0.05,
        seed=11,
    )
    family = HashFamily(k=16 if smoke else 32, seed=5)
    index = build_memory_index(data.corpus, family, t=25, vocab_size=4096)
    directory = Path(tempfile.mkdtemp(prefix="bench_service_"))
    write_index(index, directory)
    engine = NearDupEngine(data.corpus, DiskInvertedIndex(directory))

    windows: list[np.ndarray] = []
    for text_id in range(len(data.corpus)):
        text = np.asarray(data.corpus[text_id])
        for start in range(0, text.size - WINDOW + 1, WINDOW):
            windows.append(text[start : start + WINDOW])
    return engine, windows


def make_queries(windows, total: int, clients: int, rng) -> list[np.ndarray]:
    """A bursty duplicate-heavy request stream.

    The stream is built in fleet-wide rounds of ``clients`` requests;
    each round samples with replacement from a fresh hot set of
    ``clients/8`` distinct windows.  Sharded round-robin across the
    client threads, one round's requests are issued concurrently — the
    duplication lands inside the micro-batcher's coalescing window,
    where real audit sweeps put it.
    """
    rounds = (total + clients - 1) // clients
    hot_size = max(1, clients // 8)
    stream: list[np.ndarray] = []
    for _ in range(rounds):
        hot = [
            windows[i]
            for i in rng.choice(len(windows), min(hot_size, len(windows)),
                                replace=False)
        ]
        stream.extend(hot[i] for i in rng.integers(0, len(hot), size=clients))
    return stream[:total]


def run_scenario(
    engine: NearDupEngine,
    queries: list[np.ndarray],
    *,
    name: str,
    clients: int,
    max_batch: int,
    linger_ms: float,
    workers: int,
    theta: float,
) -> dict:
    """One fresh service instance, closed-loop clients, wall-clock qps."""
    config = ServiceConfig(
        port=0,
        workers=workers,
        max_batch=max_batch,
        linger_ms=linger_ms,
        max_queue=max(256, 2 * clients),
        warmup_lists=64,
    )
    shards = [queries[position::clients] for position in range(clients)]
    latencies: list[float] = []
    errors: list[BaseException] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    with ServiceRunner(engine, config) as runner:

        def drive(shard: list[np.ndarray]) -> None:
            try:
                with ServiceClient(runner.host, runner.port) as client:
                    barrier.wait()
                    for tokens in shard:
                        begin = time.perf_counter()
                        client.search(tokens, theta)
                        elapsed = time.perf_counter() - begin
                        with lock:
                            latencies.append(elapsed)
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [threading.Thread(target=drive, args=(shard,)) for shard in shards]
        for thread in threads:
            thread.start()
        barrier.wait()
        begin = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - begin
        snapshot = runner.call(runner.service.stats.snapshot)
        cache = runner.call(lambda: runner.service.searcher.index.stats().to_dict())

    if errors:
        raise errors[0]
    observed = np.asarray(latencies)
    return {
        "scenario": name,
        "clients": clients,
        "max_batch": max_batch,
        "linger_ms": linger_ms,
        "requests": len(queries),
        "seconds": wall,
        "qps": len(queries) / wall if wall > 0 else 0.0,
        "latency_ms": {
            "p50": float(np.percentile(observed, 50)) * 1e3,
            "p95": float(np.percentile(observed, 95)) * 1e3,
            "mean": float(observed.mean()) * 1e3,
        },
        "mean_batch_size": snapshot["mean_batch_size"],
        "batches": snapshot["batches"],
        "cache_hit_rate": cache["hit_rate"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="CI scale (seconds, not minutes)"
    )
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--theta", type=float, default=0.8)
    parser.add_argument("--output", default=str(OUTPUT))
    args = parser.parse_args(argv)

    total = args.requests or (96 if args.smoke else 512)
    engine, windows = build_engine(args.smoke)
    queries = make_queries(
        windows, total, CONCURRENT_CLIENTS, np.random.default_rng(0)
    )

    # The ON batch size is clients/workers, not clients: closed-loop
    # clients re-request in lock-step, so a batch as large as the whole
    # fleet leaves every other worker thread idle.  Halving it keeps
    # one batch per worker in flight — coalescing *and* parallelism.
    on_batch = max(2, CONCURRENT_CLIENTS // args.workers)
    scenarios = [
        dict(name="sequential", clients=1, max_batch=on_batch, linger_ms=8.0),
        dict(name="concurrent_off", clients=CONCURRENT_CLIENTS, max_batch=1,
             linger_ms=0.0),
        dict(name="concurrent_on", clients=CONCURRENT_CLIENTS,
             max_batch=on_batch, linger_ms=8.0),
    ]
    rows = []
    print(
        f"{'scenario':>15} {'clients':>8} {'qps':>8} {'p50_ms':>8} "
        f"{'p95_ms':>8} {'batch':>6} {'cache':>6}"
    )
    for scenario in scenarios:
        row = run_scenario(
            engine, queries, workers=args.workers, theta=args.theta, **scenario
        )
        rows.append(row)
        print(
            f"{row['scenario']:>15} {row['clients']:>8} {row['qps']:>8.1f} "
            f"{row['latency_ms']['p50']:>8.2f} {row['latency_ms']['p95']:>8.2f} "
            f"{row['mean_batch_size']:>6.2f} {row['cache_hit_rate']:>6.2f}"
        )

    on = next(row for row in rows if row["scenario"] == "concurrent_on")
    off = next(row for row in rows if row["scenario"] == "concurrent_off")
    speedup = on["qps"] / off["qps"] if off["qps"] else 0.0
    payload = {
        "benchmark": "bench_service",
        "smoke": args.smoke,
        "requests": total,
        "workers": args.workers,
        "theta": args.theta,
        "rows": rows,
        "batching_speedup_qps": speedup,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2))
    print(f"wrote {args.output}")

    # Acceptance gate (full scale only): micro-batching ON must beat
    # OFF by >= 1.5x at 32 concurrent clients.
    if not args.smoke:
        ok = speedup >= 1.5
        print(
            f"acceptance @{CONCURRENT_CLIENTS} clients: batching speedup "
            f"{speedup:.2f}x (>= 1.5 required) -> {'PASS' if ok else 'FAIL'}"
        )
        return 0 if ok else 1
    print(f"smoke: batching speedup {speedup:.2f}x (gate skipped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
