"""Throughput benchmark: batch query executor vs. the sequential loop.

ISSUE 1 acceptance benchmark.  Reproduces the paper's Section 5
workload shape — a large batch of model-generated query windows
searched against one training corpus — and measures, per batch size:

* queries/sec of the sequential reference loop (``workers=0``);
* queries/sec of the batch executor (``--workers``, default 4);
* total inverted-list I/O bytes of both paths (the list-dedup +
  batch-pinned-cache savings).

Generated text is highly repetitive — many prompts yield byte-identical
continuations — so the query stream samples windows *with replacement*
from a pool of distinct generated windows (pool size = batch/4,
mirroring the ~4x duplication of a memorization sweep's query stream).
The sketch-dedup and shared-list savings measured here are exactly the
ones that repetition exposes.

Run: ``PYTHONPATH=src python benchmarks/bench_batch_query.py [--tiny]``
Writes ``BENCH_batch_query.json`` next to the repository root.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.hashing import HashFamily
from repro.core.search import NearDuplicateSearcher
from repro.corpus.synthetic import synthweb
from repro.index.builder import build_memory_index
from repro.index.storage import DiskInvertedIndex, write_index
from repro.lm.generation import GenerationConfig, generate
from repro.lm.models import train_model
from repro.query.executor import BatchQueryExecutor

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_batch_query.json"

FULL_BATCH_SIZES = (1, 32, 256, 2048)
TINY_BATCH_SIZES = (1, 8, 32)


def build_workload(tiny: bool):
    """Corpus + disk index + generated window pool (paper Section 5 shape)."""
    num_texts = 120 if tiny else 1500
    data = synthweb(
        num_texts=num_texts,
        mean_length=200 if tiny else 300,
        vocab_size=4096,
        duplicate_rate=0.15,
        span_length=64,
        mutation_rate=0.05,
        seed=11,
    )
    family = HashFamily(k=16 if tiny else 32, seed=5)
    index = build_memory_index(data.corpus, family, t=25, vocab_size=4096)
    directory = Path(tempfile.mkdtemp(prefix="bench_batch_query_"))
    write_index(index, directory)

    tier = train_model("large", data.corpus, vocab_size=4096)
    config = GenerationConfig(strategy="top_k", top_k=50)
    windows = []
    for seed in range(4 if tiny else 16):
        text = generate(tier.model, 256, config=config, seed=seed)
        for start in range(0, text.size - 64 + 1, 64):
            windows.append(text[start : start + 64])
    return DiskInvertedIndex(directory), windows


def make_queries(windows, batch_size: int, rng) -> list[np.ndarray]:
    """Sample the query batch with replacement from a bounded pool."""
    pool_size = max(1, min(len(windows), batch_size // 4 or 1))
    pool = [windows[i] for i in rng.choice(len(windows), pool_size, replace=False)]
    return [pool[i] for i in rng.integers(0, pool_size, size=batch_size)]


def run_one(searcher, queries, theta, workers) -> dict:
    executor = BatchQueryExecutor(searcher, workers=workers)
    begin = time.perf_counter()
    batch = executor.execute(queries, theta)
    wall = time.perf_counter() - begin
    return {
        "workers": workers,
        "mode": batch.stats.mode,
        "seconds": wall,
        "qps": len(queries) / wall if wall > 0 else 0.0,
        "io_bytes": batch.stats.io_bytes,
        "io_calls": batch.stats.io_calls,
        "unique_queries": batch.stats.unique_queries,
        "matched": batch.num_matched,
        "cache_hits": batch.stats.cache_hits,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true", help="CI smoke scale (seconds, not minutes)"
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--theta", type=float, default=0.8)
    parser.add_argument("--output", default=str(OUTPUT))
    args = parser.parse_args(argv)

    index, windows = build_workload(args.tiny)
    searcher = NearDuplicateSearcher(index)
    rng = np.random.default_rng(0)
    batch_sizes = TINY_BATCH_SIZES if args.tiny else FULL_BATCH_SIZES

    rows = []
    print(
        f"{'batch':>6} {'seq_qps':>9} {'batch_qps':>10} {'speedup':>8} "
        f"{'seq_io':>10} {'batch_io':>10} {'io_red':>7} {'mode':>8}"
    )
    for batch_size in batch_sizes:
        queries = make_queries(windows, batch_size, rng)
        # Warm the page cache evenly, then measure both paths cold-start
        # from the executor's perspective (fresh caches each run).
        sequential = run_one(searcher, queries, args.theta, workers=0)
        batched = run_one(searcher, queries, args.theta, workers=args.workers)
        speedup = batched["qps"] / sequential["qps"] if sequential["qps"] else 0.0
        io_reduction = (
            sequential["io_bytes"] / batched["io_bytes"]
            if batched["io_bytes"]
            else float("inf")
        )
        rows.append(
            {
                "batch_size": batch_size,
                "theta": args.theta,
                "sequential": sequential,
                "batch": batched,
                "speedup_qps": speedup,
                "io_bytes_reduction": io_reduction,
            }
        )
        print(
            f"{batch_size:>6} {sequential['qps']:>9.1f} {batched['qps']:>10.1f} "
            f"{speedup:>8.2f} {sequential['io_bytes']:>10} "
            f"{batched['io_bytes']:>10} {io_reduction:>7.2f} {batched['mode']:>8}"
        )

    payload = {
        "benchmark": "bench_batch_query",
        "tiny": args.tiny,
        "workers": args.workers,
        "rows": rows,
    }
    Path(args.output).write_text(json.dumps(payload, indent=2))
    print(f"wrote {args.output}")

    # Acceptance gates (full scale only): >= 3x qps and >= 2x io
    # reduction at batch size 256 with 4 workers.
    if not args.tiny:
        gate = next(row for row in rows if row["batch_size"] == 256)
        ok = gate["speedup_qps"] >= 3.0 and gate["io_bytes_reduction"] >= 2.0
        print(
            f"acceptance @256: speedup {gate['speedup_qps']:.2f}x "
            f"(>= 3 required), io reduction {gate['io_bytes_reduction']:.2f}x "
            f"(>= 2 required) -> {'PASS' if ok else 'FAIL'}"
        )
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
